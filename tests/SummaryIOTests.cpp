//===- tests/SummaryIOTests.cpp - ipcp/SummaryIO --------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary serialization contract: fingerprints and whole summaries
/// round-trip byte-identically, a reconstituted summary solves exactly
/// like a same-process build, partial summaries merge seamlessly, and
/// every malformed input — truncation, version skew, garbage, bad
/// partitions — fails loudly with a diagnostic.
///
//===----------------------------------------------------------------------===//

#include "ipcp/SummaryIO.h"

#include "ipcp/AnalysisSession.h"
#include "ipcp/Solver.h"
#include "workloads/Suite.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Frontend + session bundle for summary tests (sessions keep references
/// into the context and symbol table, so the pieces must live together).
struct SessionFixture {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::unique_ptr<AnalysisSession> Session;
  std::string Source;

  explicit SessionFixture(const std::string &Src) : Source(Src) {
    DiagnosticEngine Diags;
    Ctx = parseProgram(Src, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    Symbols = Sema::run(*Ctx, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
    Session = std::make_unique<AnalysisSession>(*Ctx, Symbols);
  }

  ProgramSummary summary(const JumpFunctionOptions &Opts,
                         const std::string &Name = "test") {
    return buildSummary(*Session, Opts, Name, summarySourceHash(Source));
  }
};

/// The distinct jump-function configurations the nine suite columns
/// exercise, plus the gated-SSA build (gamma fingerprints), the
/// precision tier (flow-sensitive aliasing, optimistic numbering), and
/// the copy tier (the copy lattice's K-form fingerprints).
std::vector<JumpFunctionOptions> allJfOptions() {
  std::vector<JumpFunctionOptions> Out;
  auto Add = [&](JumpFunctionKind K, bool Rjf, bool Mod, bool Gsa) {
    JumpFunctionOptions O;
    O.Kind = K;
    O.UseReturnJumpFunctions = Rjf;
    O.UseMod = Mod;
    O.UseGatedSsa = Gsa;
    Out.push_back(O);
  };
  Add(JumpFunctionKind::Polynomial, true, true, false);
  Add(JumpFunctionKind::PassThrough, true, true, false);
  Add(JumpFunctionKind::IntraConst, true, true, false);
  Add(JumpFunctionKind::Literal, true, true, false);
  Add(JumpFunctionKind::Polynomial, false, true, false);
  Add(JumpFunctionKind::PassThrough, false, true, false);
  Add(JumpFunctionKind::Polynomial, true, false, false);
  Add(JumpFunctionKind::Polynomial, true, true, true);
  JumpFunctionOptions Fsa;
  Fsa.FlowSensitiveAlias = true;
  Out.push_back(Fsa);
  JumpFunctionOptions Ogvn;
  Ogvn.OptimisticVn = true;
  Out.push_back(Ogvn);
  JumpFunctionOptions Copy;
  Copy.CopyPropagation = true;
  Out.push_back(Copy);
  return Out;
}

std::string fingerprint(const JumpFunction &J) {
  std::string Fp;
  J.appendFingerprint(Fp);
  return Fp;
}

/// Renders a solve's CONSTANTS sets deterministically.
std::string constantsDigest(const SolveResult &R, const SymbolTable &Symbols,
                            size_t NumProcs) {
  std::string Out;
  for (ProcId P = 0; P < NumProcs; ++P)
    for (const auto &[Sym, V] : R.constants(P)) {
      Out += std::to_string(P);
      Out += ':';
      Out += Symbols.symbol(Sym).Name;
      Out += '=';
      Out += std::to_string(V);
      Out += '\n';
    }
  return Out;
}

const char *RichSource = R"(global g
global h
proc main()
  integer k
  g = 4
  k = 3 * g + 1
  call a(k, 7)
  call a(k + g, k)
end
proc a(x, y)
  integer t
  t = x + y
  if (x > 0) then
    h = t
  else
    h = 0 - t
  end if
  call b(t)
end
proc b(z)
  print z
  g = z
end
)";

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprint round trips
//===----------------------------------------------------------------------===//

TEST(SummaryIO, FingerprintRoundTripsEveryFormInSuite) {
  // Every jump function of every suite program under every configuration
  // must survive parse(print(J)) byte-identically.
  size_t Checked = 0;
  for (const WorkloadProgram &W : benchmarkSuite()) {
    SessionFixture F(W.Source);
    for (const JumpFunctionOptions &Opts : allJfOptions()) {
      ProgramSummary S = F.summary(Opts, W.Name);
      for (const ProcSummary &P : S.Procs) {
        auto Check = [&](const JumpFunction &J) {
          std::string Fp = fingerprint(J);
          JumpFunction Parsed;
          std::string Error;
          ASSERT_TRUE(JumpFunction::parseFingerprint(Fp, Parsed, Error))
              << Fp << ": " << Error;
          EXPECT_EQ(fingerprint(Parsed), Fp);
          ++Checked;
        };
        for (const CallSiteJumpFunctions &Site : P.Sites) {
          for (const JumpFunction &J : Site.Args)
            Check(J);
          for (const JumpFunction &J : Site.Globals)
            Check(J);
        }
        for (const auto &[Sym, J] : P.Returns) {
          (void)Sym;
          Check(J);
        }
      }
    }
  }
  EXPECT_GT(Checked, 1000u);
}

TEST(SummaryIO, FingerprintParsesHandWrittenForms) {
  // Gamma and unknown nodes, written by hand so coverage does not depend
  // on what the suite programs happen to generate.
  for (const char *Fp :
       {"B", "C-9223372036854775808;", "C42;", "P3;", "Yc5;", "Yp7;",
        "Yu1(p2;)", "Yb4(p1;c3;)", "Yg(b7(p1;c0;)c1;?)",
        "Yb0(g(p1;?c2;)u0(p3;))"}) {
    JumpFunction Parsed;
    std::string Error;
    ASSERT_TRUE(JumpFunction::parseFingerprint(Fp, Parsed, Error))
        << Fp << ": " << Error;
    EXPECT_EQ(fingerprint(Parsed), Fp);
  }
}

TEST(SummaryIO, FingerprintParserRejectsMalformed) {
  const char *Bad[] = {
      "",                      // empty
      "X",                     // unknown form tag
      "C",                     // truncated constant
      "C5",                    // missing ';'
      "C5;x",                  // trailing bytes
      "C99999999999999999999;",// int64 overflow
      "P-1;",                  // negative symbol id
      "P4294967295;",          // InvalidSymbol
      "Y",                     // truncated expression
      "Yq5;",                  // unknown node tag
      "Yu9(c1;)",              // unary op out of range
      "Yb99(c1;c2;)",          // binary op out of range
      "Yb0(c1;)",              // binary arity
      "Yg(c1;c2;)",            // gamma arity
      "Yb0(c1;c2;",            // unclosed paren
      "Yb0(c1;c2;)x",          // trailing bytes after expr
  };
  for (const char *Fp : Bad) {
    JumpFunction Parsed;
    std::string Error;
    EXPECT_FALSE(JumpFunction::parseFingerprint(Fp, Parsed, Error)) << Fp;
    EXPECT_FALSE(Error.empty()) << Fp;
  }
}

TEST(SummaryIO, FingerprintParserBoundsNesting) {
  // A nesting bomb must be rejected cleanly, not overflow the stack.
  std::string Bomb = "Y";
  for (int I = 0; I < 5000; ++I)
    Bomb += "u0(";
  Bomb += "c1;";
  for (int I = 0; I < 5000; ++I)
    Bomb += ")";
  JumpFunction Parsed;
  std::string Error;
  EXPECT_FALSE(JumpFunction::parseFingerprint(Bomb, Parsed, Error));
  EXPECT_NE(Error.find("deep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Summary round trips and reconstituted solves
//===----------------------------------------------------------------------===//

TEST(SummaryIO, SummaryRoundTripsByteIdentically) {
  for (const WorkloadProgram &W : benchmarkSuite()) {
    SessionFixture F(W.Source);
    for (const JumpFunctionOptions &Opts : allJfOptions()) {
      ProgramSummary S = F.summary(Opts, W.Name);
      std::string Bytes = serializeSummary(S);
      ProgramSummary Reloaded;
      std::string Error;
      ASSERT_TRUE(parseSummary(Bytes, Reloaded, Error))
          << W.Name << ": " << Error;
      EXPECT_EQ(serializeSummary(Reloaded), Bytes) << W.Name;
    }
  }
}

TEST(SummaryIO, ReconstitutedSolveMatchesDirectSolve) {
  for (const WorkloadProgram &W : benchmarkSuite()) {
    SessionFixture F(W.Source);
    for (const JumpFunctionOptions &Opts : allJfOptions()) {
      // Direct: stage 2 + stage 3 in-process.
      const Module &M = F.Session->module();
      const CallGraph &CG = F.Session->callGraph();
      ProgramJumpFunctions Direct = buildJumpFunctions(
          M, F.Symbols, CG, F.Session->modRef(Opts.UseMod), Opts,
          &F.Session->refAlias(Opts.UseMod), nullptr, F.Session.get(),
          Opts.FlowSensitiveAlias ? &F.Session->flowAlias(Opts.UseMod)
                                  : nullptr,
          Opts.CopyPropagation ? &F.Session->copyProp(Opts.UseMod)
                               : nullptr);
      SolveResult Want = solveConstants(F.Symbols, CG, Direct);

      // Through the wire: summary -> bytes -> parse -> reconstitute ->
      // solve.
      std::string Bytes = serializeSummary(F.summary(Opts, W.Name));
      ProgramSummary Reloaded;
      std::string Error;
      ASSERT_TRUE(parseSummary(Bytes, Reloaded, Error)) << Error;
      SolveResult Got;
      ASSERT_TRUE(solveSummary(Reloaded, M, F.Symbols, CG,
                               SolverStrategy::Worklist, Got, Error))
          << W.Name << ": " << Error;

      EXPECT_EQ(constantsDigest(Got, F.Symbols, CG.numProcs()),
                constantsDigest(Want, F.Symbols, CG.numProcs()))
          << W.Name;
    }
  }
}

TEST(SummaryIO, MergedPartialsMatchFullSummaryByteForByte) {
  SessionFixture F(RichSource);
  JumpFunctionOptions Opts;
  ProgramSummary Full = F.summary(Opts);
  std::string FullBytes = serializeSummary(Full);

  // One part per procedure, shuffled, serialized and reloaded — the
  // worker-to-coordinator path.
  const Module &M = F.Session->module();
  const CallGraph &CG = F.Session->callGraph();
  ProgramJumpFunctions Jfs = buildJumpFunctions(
      M, F.Symbols, CG, F.Session->modRef(true), Opts,
      &F.Session->refAlias(true), nullptr, F.Session.get());
  std::vector<ProgramSummary> Parts;
  std::vector<ProcId> Order = {2, 0, 1};
  for (ProcId P : Order) {
    ProgramSummary Part =
        makeSummary("test", summarySourceHash(F.Source), M, F.Symbols, CG,
                    Jfs, &F.Session->refAlias(true), {P});
    std::string Bytes = serializeSummary(Part);
    ProgramSummary Reloaded;
    std::string Error;
    ASSERT_TRUE(parseSummary(Bytes, Reloaded, Error)) << Error;
    EXPECT_FALSE(Reloaded.complete());
    Parts.push_back(std::move(Reloaded));
  }

  ProgramSummary Merged;
  std::string Error;
  ASSERT_TRUE(mergeSummaries(std::move(Parts), Merged, Error)) << Error;
  EXPECT_EQ(serializeSummary(Merged), FullBytes);
}

//===----------------------------------------------------------------------===//
// Malformed-input hardening
//===----------------------------------------------------------------------===//

TEST(SummaryIO, ParseRejectsMalformedDocuments) {
  SessionFixture F(RichSource);
  std::string Good = serializeSummary(F.summary(JumpFunctionOptions()));
  ProgramSummary Out;
  std::string Error;
  ASSERT_TRUE(parseSummary(Good, Out, Error)) << Error;

  // Truncations at every eighth byte: never a crash, never a success.
  for (size_t N = 0; N < Good.size(); N += 8) {
    Error.clear();
    EXPECT_FALSE(parseSummary(Good.substr(0, N), Out, Error)) << N;
    EXPECT_FALSE(Error.empty()) << N;
  }

  auto Mutate = [&](const std::string &From, const std::string &To) {
    std::string Doc = Good;
    size_t Pos = Doc.find(From);
    EXPECT_NE(Pos, std::string::npos) << From;
    Doc.replace(Pos, From.size(), To);
    return Doc;
  };

  struct Case {
    std::string Doc;
    const char *ExpectInError;
  } Cases[] = {
      {"", "JSON"},
      {"not json at all", "JSON"},
      {"[1,2,3]", "object"},
      {Mutate("\"format\":\"ipcp-jf-summary\"", "\"format\":\"tarball\""),
       "format"},
      {Mutate("\"version\":1", "\"version\":2"), "version mismatch"},
      {Mutate("\"version\":1", "\"version\":1,\"extra\":true"), "unknown"},
      {Mutate("\"source_fnv\":\"", "\"source_fnv\":\"zz"), "hex"},
      {Mutate("\"jf\":\"poly\"", "\"jf\":\"cubic\""), "config.jf"},
      {Mutate("\"num_procs\":3", "\"num_procs\":-3"), "non-negative"},
  };
  for (const Case &C : Cases) {
    Error.clear();
    EXPECT_FALSE(parseSummary(C.Doc, Out, Error)) << C.Doc.substr(0, 80);
    EXPECT_NE(Error.find(C.ExpectInError), std::string::npos)
        << "got '" << Error << "', want substring '" << C.ExpectInError
        << "'";
  }
}

TEST(SummaryIO, PrecisionFlagsSkewAcrossVersions) {
  SessionFixture F(RichSource);
  ProgramSummary Out;
  std::string Error;

  // A default-configuration summary carries no precision keys at all —
  // its bytes are exactly the pre-precision (v1) layout — and parsing
  // those bytes yields the flags' defaults, so old writers and new
  // readers (and vice versa) interoperate without a version bump.
  std::string V1 = serializeSummary(F.summary(JumpFunctionOptions()));
  EXPECT_EQ(V1.find("fsa"), std::string::npos);
  EXPECT_EQ(V1.find("ogvn"), std::string::npos);
  ASSERT_TRUE(parseSummary(V1, Out, Error)) << Error;
  EXPECT_FALSE(Out.Options.FlowSensitiveAlias);
  EXPECT_FALSE(Out.Options.OptimisticVn);
  EXPECT_EQ(serializeSummary(Out), V1);

  // A writer that spells the defaults out is tolerated, and
  // re-serialization canonicalizes back to the elided v1 bytes.
  std::string Spelled = V1;
  size_t Pos = Spelled.find("\"gsa\":false");
  ASSERT_NE(Pos, std::string::npos);
  Spelled.insert(Pos, "\"fsa\":false,\"ogvn\":false,");
  ASSERT_TRUE(parseSummary(Spelled, Out, Error)) << Error;
  EXPECT_FALSE(Out.Options.FlowSensitiveAlias);
  EXPECT_FALSE(Out.Options.OptimisticVn);
  EXPECT_EQ(serializeSummary(Out), V1);

  // Precision-era summaries spell the set flag and round-trip it.
  JumpFunctionOptions FsaOpts;
  FsaOpts.FlowSensitiveAlias = true;
  std::string FsaBytes = serializeSummary(F.summary(FsaOpts));
  EXPECT_NE(FsaBytes.find("\"fsa\":true"), std::string::npos);
  EXPECT_EQ(FsaBytes.find("ogvn"), std::string::npos);
  ASSERT_TRUE(parseSummary(FsaBytes, Out, Error)) << Error;
  EXPECT_TRUE(Out.Options.FlowSensitiveAlias);
  EXPECT_EQ(serializeSummary(Out), FsaBytes);

  JumpFunctionOptions OgvnOpts;
  OgvnOpts.OptimisticVn = true;
  std::string OgvnBytes = serializeSummary(F.summary(OgvnOpts));
  EXPECT_NE(OgvnBytes.find("\"ogvn\":true"), std::string::npos);
  ASSERT_TRUE(parseSummary(OgvnBytes, Out, Error)) << Error;
  EXPECT_TRUE(Out.Options.OptimisticVn);
  EXPECT_EQ(serializeSummary(Out), OgvnBytes);

  // The optional keys loosen nothing else: ill-typed or misspelled
  // precision fields still fail loudly.
  auto Mutate = [&](const std::string &From, const std::string &To) {
    std::string Doc = FsaBytes;
    size_t At = Doc.find(From);
    EXPECT_NE(At, std::string::npos) << From;
    Doc.replace(At, From.size(), To);
    return Doc;
  };
  Error.clear();
  EXPECT_FALSE(
      parseSummary(Mutate("\"fsa\":true", "\"fsa\":\"yes\""), Out, Error));
  EXPECT_NE(Error.find("config.fsa must be a boolean"), std::string::npos)
      << Error;
  Error.clear();
  EXPECT_FALSE(
      parseSummary(Mutate("\"fsa\":true", "\"fsb\":true"), Out, Error));
  EXPECT_NE(Error.find("unknown config field"), std::string::npos) << Error;
}

TEST(SummaryIO, CopyTokenSkewAcrossVersions) {
  // A source whose copy-era jump functions carry the K-form: the buf(1)
  // actual is a copy of the relay's formal.
  const char *CopySource = R"(proc main()
  call relay(7)
end
proc relay(x)
  array buf(8)
  buf(1) = x
  call leaf(buf(1))
end
proc leaf(p)
  print p * 2
end
)";
  SessionFixture F(CopySource);
  ProgramSummary Out;
  std::string Error;

  // A default-configuration summary carries no copy key and no K-form
  // tokens — its bytes are exactly the pre-copy (v1) layout — and
  // parsing those bytes yields the flag's default, so old writers and
  // new readers (and vice versa) interoperate without a version bump.
  std::string V1 = serializeSummary(F.summary(JumpFunctionOptions()));
  EXPECT_EQ(V1.find("\"copy\""), std::string::npos);
  ASSERT_TRUE(parseSummary(V1, Out, Error)) << Error;
  EXPECT_FALSE(Out.Options.CopyPropagation);
  EXPECT_EQ(serializeSummary(Out), V1);

  // A writer that spells the default out is tolerated, and
  // re-serialization canonicalizes back to the elided v1 bytes.
  std::string Spelled = V1;
  size_t Pos = Spelled.find("\"gsa\":false");
  ASSERT_NE(Pos, std::string::npos);
  Spelled.insert(Pos, "\"copy\":false,");
  ASSERT_TRUE(parseSummary(Spelled, Out, Error)) << Error;
  EXPECT_FALSE(Out.Options.CopyPropagation);
  EXPECT_EQ(serializeSummary(Out), V1);

  // Copy-era summaries spell the flag, carry the K-form fingerprint,
  // and round-trip byte-identically (including the forward_copy stat
  // the recompute-and-compare checksum re-derives on load).
  JumpFunctionOptions CopyOpts;
  CopyOpts.CopyPropagation = true;
  std::string CopyBytes = serializeSummary(F.summary(CopyOpts));
  EXPECT_NE(CopyBytes.find("\"copy\":true"), std::string::npos);
  EXPECT_NE(CopyBytes.find('K'), std::string::npos);
  EXPECT_NE(CopyBytes.find("forward_copy"), std::string::npos);
  ASSERT_TRUE(parseSummary(CopyBytes, Out, Error)) << Error;
  EXPECT_TRUE(Out.Options.CopyPropagation);
  EXPECT_EQ(serializeSummary(Out), CopyBytes);

  // The optional key loosens nothing else: ill-typed or misspelled copy
  // fields still fail loudly.
  auto Mutate = [&](const std::string &From, const std::string &To) {
    std::string Doc = CopyBytes;
    size_t At = Doc.find(From);
    EXPECT_NE(At, std::string::npos) << From;
    Doc.replace(At, From.size(), To);
    return Doc;
  };
  Error.clear();
  EXPECT_FALSE(
      parseSummary(Mutate("\"copy\":true", "\"copy\":1"), Out, Error));
  EXPECT_NE(Error.find("config.copy must be a boolean"), std::string::npos)
      << Error;
  Error.clear();
  EXPECT_FALSE(
      parseSummary(Mutate("\"copy\":true", "\"kopy\":true"), Out, Error));
  EXPECT_NE(Error.find("unknown config field"), std::string::npos) << Error;
}

TEST(SummaryIO, ParseCatchesContentCorruptionThroughStats) {
  SessionFixture F(RichSource);
  std::string Good = serializeSummary(F.summary(JumpFunctionOptions()));

  // Drop one whole procedure entry from the procs array: still valid
  // JSON, still schema-shaped — only the stats checksum can notice.
  size_t Start = Good.find("{\"alias_unstable\"");
  ASSERT_NE(Start, std::string::npos);
  int Depth = 0;
  size_t End = Start;
  for (; End < Good.size(); ++End) {
    if (Good[End] == '{')
      ++Depth;
    else if (Good[End] == '}' && --Depth == 0)
      break;
  }
  std::string Doc = Good;
  Doc.erase(Start, End - Start + 2); // entry plus trailing ",".

  ProgramSummary Out;
  std::string Error;
  EXPECT_FALSE(parseSummary(Doc, Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(SummaryIO, MergeRejectsBadPartitions) {
  SessionFixture F(RichSource);
  JumpFunctionOptions Opts;
  const Module &M = F.Session->module();
  const CallGraph &CG = F.Session->callGraph();
  ProgramJumpFunctions Jfs = buildJumpFunctions(
      M, F.Symbols, CG, F.Session->modRef(true), Opts,
      &F.Session->refAlias(true), nullptr, F.Session.get());
  auto Part = [&](std::vector<ProcId> Procs) {
    return makeSummary("test", summarySourceHash(F.Source), M, F.Symbols, CG,
                       Jfs, &F.Session->refAlias(true), std::move(Procs));
  };

  ProgramSummary Out;
  std::string Error;

  // Overlap.
  {
    std::vector<ProgramSummary> Parts;
    Parts.push_back(Part({0, 1}));
    Parts.push_back(Part({1, 2}));
    EXPECT_FALSE(mergeSummaries(std::move(Parts), Out, Error));
    EXPECT_NE(Error.find("overlap"), std::string::npos) << Error;
  }
  // Gap.
  {
    std::vector<ProgramSummary> Parts;
    Parts.push_back(Part({0}));
    Parts.push_back(Part({2}));
    EXPECT_FALSE(mergeSummaries(std::move(Parts), Out, Error));
    EXPECT_NE(Error.find("gap"), std::string::npos) << Error;
  }
  // Configuration skew.
  {
    std::vector<ProgramSummary> Parts;
    Parts.push_back(Part({0, 1}));
    Parts.push_back(Part({2}));
    Parts.back().Options.Kind = JumpFunctionKind::Literal;
    EXPECT_FALSE(mergeSummaries(std::move(Parts), Out, Error));
    EXPECT_NE(Error.find("configuration"), std::string::npos) << Error;
  }
  // Source skew.
  {
    std::vector<ProgramSummary> Parts;
    Parts.push_back(Part({0, 1}));
    Parts.push_back(Part({2}));
    Parts.back().SourceHash ^= 1;
    EXPECT_FALSE(mergeSummaries(std::move(Parts), Out, Error));
    EXPECT_NE(Error.find("source"), std::string::npos) << Error;
  }
  // Empty.
  {
    EXPECT_FALSE(mergeSummaries({}, Out, Error));
    EXPECT_FALSE(Error.empty());
  }
  // And the happy path still works after all that.
  {
    std::vector<ProgramSummary> Parts;
    Parts.push_back(Part({1}));
    Parts.push_back(Part({0, 2}));
    EXPECT_TRUE(mergeSummaries(std::move(Parts), Out, Error)) << Error;
    EXPECT_TRUE(Out.complete());
  }
}

TEST(SummaryIO, ReconstituteValidatesAgainstLoadedProgram) {
  SessionFixture F(RichSource);
  JumpFunctionOptions Opts;
  ProgramSummary S = F.summary(Opts);

  // Partial summaries must be merged first.
  {
    const Module &M = F.Session->module();
    const CallGraph &CG = F.Session->callGraph();
    ProgramJumpFunctions Jfs = buildJumpFunctions(
        M, F.Symbols, CG, F.Session->modRef(true), Opts,
        &F.Session->refAlias(true), nullptr, F.Session.get());
    ProgramSummary Partial =
        makeSummary("test", summarySourceHash(F.Source), M, F.Symbols, CG,
                    Jfs, &F.Session->refAlias(true), {0});
    ProgramJumpFunctions Out;
    std::string Error;
    EXPECT_FALSE(reconstituteJumpFunctions(Partial, M, F.Symbols, CG, Out,
                                           Error));
    EXPECT_NE(Error.find("partial"), std::string::npos) << Error;
  }

  // A summary of one program must not apply to another.
  {
    SessionFixture Other("proc main()\n  print 1\nend\n");
    ProgramJumpFunctions Out;
    std::string Error;
    EXPECT_FALSE(reconstituteJumpFunctions(
        S, Other.Session->module(), Other.Symbols,
        Other.Session->callGraph(), Out, Error));
    EXPECT_FALSE(Error.empty());
  }
}
