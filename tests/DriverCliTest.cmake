# Driver CLI contract test, run via `cmake -P` (see tests/CMakeLists.txt).
# Bad inputs must produce a diagnostic and a nonzero exit instead of
# silently analyzing an empty program; --run/--validate must work.

if(NOT DEFINED DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "DRIVER and WORK_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(GOOD_MF "${WORK_DIR}/good.mf")
file(WRITE "${GOOD_MF}" "proc main()
  integer i
  do i = 1, 3
    print i * 10
  end do
end
")

set(FAILURES "")

function(expect_run NAME EXPECT_RC EXPECT_STDERR)
  execute_process(COMMAND ${DRIVER} ${ARGN}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(EXPECT_RC STREQUAL "zero" AND NOT RC EQUAL 0)
    set(FAILURES "${FAILURES}\n${NAME}: expected success, got rc=${RC}: ${ERR}" PARENT_SCOPE)
    return()
  endif()
  if(EXPECT_RC STREQUAL "nonzero" AND RC EQUAL 0)
    set(FAILURES "${FAILURES}\n${NAME}: expected failure, got rc=0" PARENT_SCOPE)
    return()
  endif()
  if(NOT EXPECT_STDERR STREQUAL "" AND NOT ERR MATCHES "${EXPECT_STDERR}")
    set(FAILURES "${FAILURES}\n${NAME}: stderr '${ERR}' does not match '${EXPECT_STDERR}'" PARENT_SCOPE)
    return()
  endif()
  set(LAST_STDOUT "${OUT}" PARENT_SCOPE)
endfunction()

# Missing input file: diagnostic + nonzero, not an empty-program run.
expect_run(missing_file nonzero "no such file"
           "${WORK_DIR}/does-not-exist.mf")

# A directory as input: an ifstream would silently read nothing.
expect_run(directory_input nonzero "not a regular file" "${WORK_DIR}")

# Unwritable --constants-out: diagnostic + nonzero.
expect_run(bad_constants_out nonzero "cannot write"
           "--constants-out=${WORK_DIR}/no-such-dir/c.txt" "${GOOD_MF}")

# Unknown options still fail loudly.
expect_run(unknown_option nonzero "unknown option" "--bogus" "${GOOD_MF}")

# --run executes the program and prints its trace.
expect_run(run_trace zero "ok" "--run" "${GOOD_MF}")
if(NOT LAST_STDOUT MATCHES "10\n20\n30")
  set(FAILURES "${FAILURES}\nrun_trace: unexpected trace '${LAST_STDOUT}'")
endif()

# --run reports traps with a nonzero exit.
set(TRAP_MF "${WORK_DIR}/trap.mf")
file(WRITE "${TRAP_MF}" "proc main()
  integer z
  print 1 / z
end
")
expect_run(run_trap nonzero "divide-by-zero" "--run" "${TRAP_MF}")

# --validate passes on a well-behaved program, under DCE too.
expect_run(validate zero "" "--validate" "${GOOD_MF}")
if(NOT LAST_STDOUT MATCHES "validation passed")
  set(FAILURES "${FAILURES}\nvalidate: unexpected output '${LAST_STDOUT}'")
endif()
expect_run(validate_complete zero "" "--validate" "--complete" "${GOOD_MF}")

# A good --constants-out write still succeeds.
expect_run(constants_out zero ""
           "--constants-out=${WORK_DIR}/constants.txt" "${GOOD_MF}")
if(NOT EXISTS "${WORK_DIR}/constants.txt")
  set(FAILURES "${FAILURES}\nconstants_out: file not written")
endif()

if(NOT FAILURES STREQUAL "")
  message(FATAL_ERROR "driver CLI test failures:${FAILURES}")
endif()
message(STATUS "driver CLI test passed")
