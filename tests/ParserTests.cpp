//===- tests/ParserTests.cpp - lang/Parser unit tests ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Parses a single-procedure body and returns the printed form of the
/// program (normalizing whitespace and precedence decisions).
std::string roundTrip(const std::string &Source) {
  auto Ctx = parseOk(Source);
  AstPrinter Printer;
  return Printer.programToString(Ctx->program());
}

/// Parses an expression by embedding it in an assignment and prints it
/// back.
std::string exprRoundTrip(const std::string &ExprText) {
  auto Ctx = parseOk("proc main()\n  integer x\n  x = " + ExprText +
                     "\nend\n");
  const auto *Assign =
      cast<AssignStmt>(Ctx->program().Procs[0]->Body.at(0));
  AstPrinter Printer;
  return Printer.exprToString(Assign->value());
}

} // namespace

TEST(Parser, EmptyMain) {
  auto Ctx = parseOk("proc main()\nend\n");
  ASSERT_EQ(Ctx->program().Procs.size(), 1u);
  EXPECT_EQ(Ctx->program().Procs[0]->name(), "main");
  EXPECT_TRUE(Ctx->program().Procs[0]->Body.empty());
}

TEST(Parser, ProgramHeaderAndGlobals) {
  auto Ctx = parseOk("program demo\nglobal a, b = 5, c = -3\narray "
                     "buf(100)\nproc main()\nend\n");
  const Program &P = Ctx->program();
  EXPECT_EQ(P.Name, "demo");
  ASSERT_EQ(P.Globals.size(), 3u);
  EXPECT_EQ(P.Globals[0].Name, "a");
  EXPECT_FALSE(P.Globals[0].Init.has_value());
  EXPECT_EQ(P.Globals[1].Init, 5);
  EXPECT_EQ(P.Globals[2].Init, -3);
  ASSERT_EQ(P.GlobalArrays.size(), 1u);
  EXPECT_EQ(P.GlobalArrays[0].Name, "buf");
  EXPECT_EQ(P.GlobalArrays[0].Size, 100);
}

TEST(Parser, FormalsAndLocals) {
  auto Ctx = parseOk(
      "proc main()\nend\nproc f(x, y, z)\n  integer a, b\n  array "
      "t(8)\n  a = x\nend\n");
  const Proc &F = *Ctx->program().Procs[1];
  EXPECT_EQ(F.formals(), (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(F.Locals, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(F.LocalArrays.size(), 1u);
  EXPECT_EQ(F.LocalArrays[0].Name, "t");
}

TEST(Parser, StatementKinds) {
  auto Ctx = parseOk(R"(proc main()
  integer x, i
  x = 1
  call main()
  if (x > 0) then
    print x
  end if
  do i = 1, 10
    read x
  end do
  while (x < 5)
    x = x + 1
  end while
  return
end
)");
  const auto &Body = Ctx->program().Procs[0]->Body;
  ASSERT_EQ(Body.size(), 6u);
  EXPECT_EQ(Body[0]->kind(), StmtKind::Assign);
  EXPECT_EQ(Body[1]->kind(), StmtKind::Call);
  EXPECT_EQ(Body[2]->kind(), StmtKind::If);
  EXPECT_EQ(Body[3]->kind(), StmtKind::DoLoop);
  EXPECT_EQ(Body[4]->kind(), StmtKind::While);
  EXPECT_EQ(Body[5]->kind(), StmtKind::Return);
}

TEST(Parser, ElseifDesugarsToNestedIf) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 0
  if (x == 1) then
    print 1
  elseif (x == 2) then
    print 2
  else
    print 3
  end if
end
)");
  const auto *Outer =
      cast<IfStmt>(Ctx->program().Procs[0]->Body.at(1));
  ASSERT_EQ(Outer->elseBody().size(), 1u);
  const auto *Nested = dyn_cast<IfStmt>(Outer->elseBody()[0]);
  ASSERT_NE(Nested, nullptr);
  EXPECT_EQ(Nested->thenBody().size(), 1u);
  EXPECT_EQ(Nested->elseBody().size(), 1u);
}

TEST(Parser, DoLoopWithStep) {
  auto Ctx = parseOk(
      "proc main()\n  integer i\n  do i = 10, 1, -2\n  end do\nend\n");
  const auto *Loop = cast<DoLoopStmt>(Ctx->program().Procs[0]->Body[0]);
  ASSERT_NE(Loop->step(), nullptr);
  EXPECT_EQ(Loop->var()->name(), "i");
}

TEST(Parser, DoLoopWithoutStep) {
  auto Ctx = parseOk(
      "proc main()\n  integer i\n  do i = 1, 10\n  end do\nend\n");
  EXPECT_EQ(cast<DoLoopStmt>(Ctx->program().Procs[0]->Body[0])->step(),
            nullptr);
}

TEST(Parser, ArrayAssignmentAndUse) {
  auto Ctx = parseOk("array a(10)\nproc main()\n  integer i\n  i = 1\n  "
                     "a(i) = a(i + 1) + 2\nend\n");
  const auto *Assign =
      cast<AssignStmt>(Ctx->program().Procs[0]->Body.at(1));
  EXPECT_EQ(Assign->target()->kind(), ExprKind::ArrayRef);
}

TEST(Parser, PrecedenceMulOverAdd) {
  EXPECT_EQ(exprRoundTrip("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(exprRoundTrip("(1 + 2) * 3"), "(1 + 2) * 3");
}

TEST(Parser, PrecedenceRelationalOverLogical) {
  EXPECT_EQ(exprRoundTrip("1 < 2 and 3 < 4"), "1 < 2 and 3 < 4");
  EXPECT_EQ(exprRoundTrip("1 < 2 or 3 < 4 and 5 < 6"),
            "1 < 2 or 3 < 4 and 5 < 6");
}

TEST(Parser, UnaryMinusBindsTightly) {
  EXPECT_EQ(exprRoundTrip("-1 + 2"), "-1 + 2");
  EXPECT_EQ(exprRoundTrip("-(1 + 2)"), "-(1 + 2)");
}

TEST(Parser, NotParsesBelowComparison) {
  auto Ctx = parseOk("proc main()\n  integer x\n  x = 0\n  if (not x == "
                     "1) then\n  end if\nend\n");
  const auto *If = cast<IfStmt>(Ctx->program().Procs[0]->Body.at(1));
  EXPECT_EQ(If->cond()->kind(), ExprKind::Unary);
}

TEST(Parser, LeftAssociativeSubtraction) {
  // (10 - 3) - 2, not 10 - (3 - 2).
  EXPECT_EQ(exprRoundTrip("10 - 3 - 2"), "10 - 3 - 2");
  EXPECT_EQ(exprRoundTrip("10 - (3 - 2)"), "10 - (3 - 2)");
}

TEST(Parser, CallArguments) {
  auto Ctx = parseOk("proc main()\n  call f(1, 2 + 3, main)\nend\nproc "
                     "f(a, b, c)\nend\n");
  const auto *Call = cast<CallStmt>(Ctx->program().Procs[0]->Body[0]);
  EXPECT_EQ(Call->calleeName(), "f");
  EXPECT_EQ(Call->args().size(), 3u);
}

TEST(Parser, ErrorMissingEnd) {
  DiagnosticEngine Diags;
  parseProgram("proc main()\n  x = 1\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, ErrorGarbageStatement) {
  DiagnosticEngine Diags;
  parseProgram("proc main()\n  + 3\nend\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("expected a statement"), std::string::npos);
}

TEST(Parser, RecoversAfterBadLine) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(
      "proc main()\n  integer x\n  ???\n  x = 1\nend\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The assignment after the bad line is still parsed.
  ASSERT_EQ(Ctx->program().Procs.size(), 1u);
  EXPECT_EQ(Ctx->program().Procs[0]->Body.size(), 1u);
}

TEST(Parser, ErrorTopLevelJunk) {
  DiagnosticEngine Diags;
  parseProgram("banana\nproc main()\nend\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RoundTripWholeProgram) {
  std::string Source = R"(program p
global n = 3
array buf(16)

proc main()
  integer i
  n = n + 1
  do i = 1, n
    buf(i) = i * 2
  end do
  call f(n, buf(1))
end

proc f(a, b)
  if (a > b) then
    print a
  else
    print b
  end if
end
)";
  std::string Once = roundTrip(Source);
  // Printing is a fixed point: print(parse(print(parse(s)))) == print(parse(s)).
  EXPECT_EQ(roundTrip(Once), Once);
}
