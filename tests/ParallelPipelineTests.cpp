//===- tests/ParallelPipelineTests.cpp - Thread-count determinism ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The parallel execution layer's contract: a pipeline run at any thread
// count produces a PipelineResult byte-identical to the serial run —
// every count, every set, every stats counter, the transformed source —
// and the batched suite runner is likewise deterministic for any job
// count. Also checks the wave-scheduling invariant the jump-function
// builder's stage 1 relies on.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include "TestHelpers.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

using namespace ipcp;

namespace {

/// Serializes every deterministic field of a PipelineResult (everything
/// except Timings) so runs can be compared byte-for-byte.
std::string fingerprint(const PipelineResult &R) {
  std::ostringstream OS;
  OS << R.Ok << '|' << R.Error << '|' << R.SubstitutedConstants << '|'
     << R.ConstantPrints << '|' << R.KnownButIrrelevant << '|'
     << R.DceRounds << '|' << R.FoldedBranches << '\n';
  OS << "perproc:";
  for (unsigned N : R.PerProcSubstituted)
    OS << ' ' << N;
  OS << "\nprocs:";
  for (const std::string &Name : R.ProcNames)
    OS << ' ' << Name;
  OS << "\nconstants:\n";
  for (size_t P = 0; P != R.Constants.size(); ++P) {
    OS << "  [" << P << "]";
    for (const auto &[Name, Value] : R.Constants[P])
      OS << " (" << Name << ',' << Value << ')';
    OS << '\n';
  }
  OS << "nevercalled:";
  for (const std::string &Name : R.NeverCalled)
    OS << ' ' << Name;
  const JumpFunctionStats &S = R.JfStats;
  OS << "\njfstats: " << S.NumForward << ' ' << S.NumForwardConst << ' '
     << S.NumForwardPassThrough << ' ' << S.NumForwardPoly << ' '
     << S.NumForwardBottom << ' ' << S.TotalPolySupport << ' '
     << S.MaxPolySupport << ' ' << S.NumReturn << ' ' << S.NumReturnConst
     << ' ' << S.NumReturnPoly << ' ' << S.NumReturnBottom;
  OS << "\nsolver: " << R.SolverProcVisits << ' ' << R.SolverJfEvaluations
     << ' ' << R.SolverCellLowerings;
  // Order the substitution map for a stable rendering.
  std::map<ExprId, int64_t> Subs(R.Substitutions.begin(),
                                 R.Substitutions.end());
  OS << "\nsubs:";
  for (const auto &[Id, Value] : Subs)
    OS << ' ' << Id << '=' << Value;
  OS << "\nsource:" << R.TransformedSource;
  return OS.str();
}

std::string runFingerprint(const std::string &Source, PipelineOptions Opts,
                           unsigned Threads) {
  Opts.Threads = Threads;
  Opts.EmitTransformedSource = true;
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return fingerprint(R);
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-suite determinism under the default configuration.
//===----------------------------------------------------------------------===//

class ParallelSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelSuiteTest, ByteIdenticalAtAnyThreadCount) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Opts;
  std::string Serial = runFingerprint(W.Source, Opts, 1);
  EXPECT_EQ(Serial, runFingerprint(W.Source, Opts, 2));
  EXPECT_EQ(Serial, runFingerprint(W.Source, Opts, 8));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Determinism across configurations that stress different phase mixes.
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, EveryConfigIsThreadCountInvariant) {
  const WorkloadProgram &Ocean = benchmarkSuite()[6];
  std::vector<PipelineOptions> Configs;
  {
    PipelineOptions O;
    Configs.push_back(O); // default polynomial
    O.Kind = JumpFunctionKind::Literal;
    Configs.push_back(O);
    O = PipelineOptions();
    O.UseReturnJumpFunctions = false;
    Configs.push_back(O);
    O = PipelineOptions();
    O.UseMod = false;
    Configs.push_back(O);
    O = PipelineOptions();
    O.CompletePropagation = true;
    Configs.push_back(O);
    O = PipelineOptions();
    O.UseGatedSsa = true;
    Configs.push_back(O);
    O = PipelineOptions();
    O.IntraproceduralOnly = true;
    Configs.push_back(O);
    O = PipelineOptions();
    O.Strategy = SolverStrategy::BindingGraph;
    Configs.push_back(O);
  }
  for (size_t I = 0; I != Configs.size(); ++I) {
    // CompletePropagation mutates the AST, but runPipeline re-parses per
    // call, so each run analyzes a fresh tree.
    std::string Serial = runFingerprint(Ocean.Source, Configs[I], 1);
    EXPECT_EQ(Serial, runFingerprint(Ocean.Source, Configs[I], 4))
        << "config " << I;
  }
}

TEST(ParallelPipeline, RandomProgramsAreThreadCountInvariant) {
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.Procs = 6 + int(Seed % 5);
    Spec.Globals = 2 + int(Seed % 3);
    Spec.AllowRecursion = Seed % 2 == 0;
    std::string Source = generateRandomProgram(Spec);
    PipelineOptions Opts;
    EXPECT_EQ(runFingerprint(Source, Opts, 1),
              runFingerprint(Source, Opts, 4))
        << "seed " << Seed;
  }
}

TEST(ParallelPipeline, ThreadsZeroMeansHardwareAndStaysIdentical) {
  const WorkloadProgram &W = benchmarkSuite()[0];
  PipelineOptions Opts;
  EXPECT_EQ(runFingerprint(W.Source, Opts, 1),
            runFingerprint(W.Source, Opts, 0));
}

//===----------------------------------------------------------------------===//
// Wave scheduling: the invariant stage 1 of the builder depends on.
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, CallAdjacencyWavesAreAValidSchedule) {
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.Procs = 8;
    Spec.AllowRecursion = true;
    test::FullAnalysis A = test::analyze(generateRandomProgram(Spec));

    const std::vector<ProcId> &Order = A.CG->bottomUpOrder();
    auto Waves = callAdjacencyWaves(*A.CG, Order);

    // Concatenated waves are a permutation of the order's indices.
    std::vector<size_t> Flat;
    std::vector<uint32_t> WaveOf(A.CG->numProcs(), UINT32_MAX);
    for (size_t W = 0; W != Waves.size(); ++W)
      for (size_t I : Waves[W]) {
        Flat.push_back(I);
        WaveOf[Order[I]] = static_cast<uint32_t>(W);
      }
    std::sort(Flat.begin(), Flat.end());
    ASSERT_EQ(Flat.size(), Order.size());
    for (size_t I = 0; I != Flat.size(); ++I)
      EXPECT_EQ(Flat[I], I);

    // Every call-adjacent pair sits in distinct waves, ordered like the
    // serial schedule.
    std::vector<uint32_t> Pos(A.CG->numProcs(), UINT32_MAX);
    for (size_t I = 0; I != Order.size(); ++I)
      Pos[Order[I]] = static_cast<uint32_t>(I);
    for (ProcId P : Order)
      for (const CallSite &S : A.CG->callSitesIn(P)) {
        if (S.Callee == P || Pos[S.Callee] == UINT32_MAX)
          continue;
        uint32_t Earlier = Pos[S.Callee] < Pos[P] ? S.Callee : P;
        uint32_t Later = Earlier == P ? S.Callee : P;
        EXPECT_LT(WaveOf[Earlier], WaveOf[Later])
            << "seed " << Seed << ": call edge " << P << "->" << S.Callee;
      }
  }
}

//===----------------------------------------------------------------------===//
// The batched suite runner.
//===----------------------------------------------------------------------===//

namespace {

std::string batchFingerprint(const SuiteRunResult &R) {
  std::ostringstream OS;
  for (const SuiteCell &Cell : R.Cells)
    OS << Cell.Program << '/' << Cell.Config << ": " << Cell.Ok << ' '
       << Cell.SubstitutedConstants << ' ' << Cell.ConstantPrints << '\n';
  return OS.str();
}

} // namespace

TEST(SuiteRunner, DeterministicAcrossJobCounts) {
  auto Configs = table3Configs();
  SuiteRunResult Serial = runSuite(benchmarkSuite(), Configs, 1);
  SuiteRunResult Par4 = runSuite(benchmarkSuite(), Configs, 4);
  SuiteRunResult Par8 = runSuite(benchmarkSuite(), Configs, 8);
  EXPECT_EQ(batchFingerprint(Serial), batchFingerprint(Par4));
  EXPECT_EQ(batchFingerprint(Serial), batchFingerprint(Par8));
  EXPECT_EQ(Serial.NumPrograms, benchmarkSuite().size());
  EXPECT_EQ(Serial.NumConfigs, Configs.size());
  EXPECT_EQ(Serial.TotalSubstituted, Par4.TotalSubstituted);
}

TEST(SuiteRunner, ConfigSetsAreWellFormed) {
  EXPECT_EQ(table2Configs().size(), 10u);
  EXPECT_EQ(table3Configs().size(), 3u);
  EXPECT_EQ(allConfigs().size(), 13u);
  EXPECT_EQ(configsByName("all").size(), 13u);
  EXPECT_EQ(configsByName("table2").size(), 10u);
  EXPECT_EQ(configsByName("table3").size(), 3u);
  EXPECT_TRUE(configsByName("nonsense").empty());
  // Config names are unique (they become table columns).
  auto Configs = allConfigs();
  for (size_t I = 0; I != Configs.size(); ++I)
    for (size_t J = I + 1; J != Configs.size(); ++J)
      EXPECT_NE(Configs[I].Name, Configs[J].Name);
}

TEST(SuiteRunner, CellsMatchDirectPipelineRuns) {
  // Spot-check the batch against direct runPipeline calls.
  auto Configs = table2Configs();
  std::vector<WorkloadProgram> Programs = {benchmarkSuite()[6]}; // ocean
  SuiteRunResult Batch = runSuite(Programs, Configs, 4);
  for (size_t C = 0; C != Configs.size(); ++C) {
    PipelineResult Direct =
        runPipeline(Programs[0].Source, Configs[C].Opts);
    ASSERT_TRUE(Direct.Ok);
    EXPECT_EQ(Batch.cell(0, C).SubstitutedConstants,
              Direct.SubstitutedConstants)
        << Configs[C].Name;
  }
}
