//===- tests/SubstitutionTests.cpp - ipcp/Substitution unit tests ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Substitution.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

struct Counted {
  FullAnalysis A;
  ProgramJumpFunctions Jfs;
  SolveResult Solve;
  SubstitutionResult Subs;
};

Counted countWith(const std::string &Source, bool UseRjf = true) {
  Counted C;
  C.A = analyze(Source);
  JumpFunctionOptions Opts;
  Opts.UseReturnJumpFunctions = UseRjf;
  C.Jfs = buildJumpFunctions(C.A.M, C.A.Symbols, *C.A.CG, C.A.MRI.get(),
                             Opts);
  C.Solve = solveConstants(C.A.Symbols, *C.A.CG, C.Jfs);
  C.Subs = countSubstitutions(C.A.M, C.A.Symbols, *C.A.CG, &C.Solve,
                              C.A.MRI.get(), UseRjf ? &C.Jfs : nullptr);
  return C;
}

} // namespace

TEST(Substitution, CountsEachConstantUseOnce) {
  Counted C = countWith(R"(proc main()
  call f(5)
end
proc f(x)
  print x
  print x + x
end
)");
  // Three textual uses of x.
  EXPECT_EQ(C.Subs.Total, 3u);
  EXPECT_EQ(C.Subs.PerProc[C.A.proc("f")], 3u);
  EXPECT_EQ(C.Subs.PerProc[C.A.proc("main")], 0u);
  EXPECT_EQ(C.Subs.Map.size(), 3u);
}

TEST(Substitution, LocalConstantsCountEverywhere) {
  Counted C = countWith(R"(proc main()
  integer n
  n = 4
  print n
  print n * n
end
)");
  EXPECT_EQ(C.Subs.Total, 3u);
}

TEST(Substitution, NonConstantUsesDoNotCount) {
  Counted C = countWith(R"(proc main()
  integer n
  read n
  print n
end
)");
  EXPECT_EQ(C.Subs.Total, 0u);
  EXPECT_TRUE(C.Subs.Map.empty());
}

TEST(Substitution, ByRefKilledActualIsNotSubstitutable) {
  Counted C = countWith(R"(proc main()
  integer v
  v = 8
  call set(v)
end
proc set(o)
  o = o + 1
end
)");
  // v is constant at the call, but set modifies it: replacing 'v' with
  // '8' would break the out-binding. Not counted.
  EXPECT_EQ(C.Subs.PerProc[C.A.proc("main")], 0u);
}

TEST(Substitution, UnmodifiedActualIsSubstitutable) {
  Counted C = countWith(R"(proc main()
  integer v
  v = 8
  call look(v)
end
proc look(p)
  print p
end
)");
  // One use in main (the actual) and one in look.
  EXPECT_EQ(C.Subs.Total, 2u);
}

TEST(Substitution, UnexecutableCodeDoesNotCount) {
  Counted C = countWith(R"(proc main()
  integer n, f
  n = 3
  f = 0
  if (f == 1) then
    print n
    print n
  end if
  print n
end
)");
  // The two uses inside the dead branch are not substituted.
  EXPECT_EQ(C.Subs.Total, 2u); // 'n' after the if + the condition use f.
}

TEST(Substitution, ConditionUsesCount) {
  Counted C = countWith(R"(proc main()
  integer f
  f = 0
  if (f == 1) then
    print 1
  end if
end
)");
  EXPECT_EQ(C.Subs.Total, 1u); // The 'f' in the condition.
  ASSERT_EQ(C.Subs.Branches.size(), 1u);
  EXPECT_FALSE(C.Subs.Branches.begin()->second);
}

TEST(Substitution, DoLoopBoundUseCounts) {
  Counted C = countWith(R"(proc main()
  integer i, n
  n = 10
  do i = 1, n
    print i
  end do
end
)");
  // The bound use of n counts; i is loop-varying.
  EXPECT_EQ(C.Subs.Total, 1u);
}

TEST(Substitution, IntraproceduralBaselineIgnoresEntrySeeds) {
  FullAnalysis A = analyze(R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)");
  SubstitutionResult Subs = countSubstitutions(
      A.M, A.Symbols, *A.CG, /*Solve=*/nullptr, A.MRI.get(),
      /*Jfs=*/nullptr);
  EXPECT_EQ(Subs.Total, 0u);
}

TEST(Substitution, RjfRecoveryCountsCallerUses) {
  Counted WithRjf = countWith(R"(proc main()
  integer v
  call set(v)
  print v
end
proc set(o)
  o = 3
end
)");
  EXPECT_EQ(WithRjf.Subs.Total, 1u);

  Counted NoRjf = countWith(R"(proc main()
  integer v
  call set(v)
  print v
end
proc set(o)
  o = 3
end
)",
                            /*UseRjf=*/false);
  EXPECT_EQ(NoRjf.Subs.Total, 0u);
}

TEST(Substitution, MapPointsAtRealUses) {
  Counted C = countWith(R"(proc main()
  integer n
  n = 6
  print n
end
)");
  ASSERT_EQ(C.Subs.Map.size(), 1u);
  EXPECT_EQ(C.Subs.Map.begin()->second, 6);
  // The mapped id belongs to some expression of the program (ids are
  // dense and start at 1).
  EXPECT_GE(C.Subs.Map.begin()->first, 1u);
  EXPECT_LT(C.Subs.Map.begin()->first, C.A.Ctx->numExprIds());
}

TEST(Substitution, UnreachableProceduresContributeNothing) {
  Counted C = countWith(R"(proc main()
  print 1
end
proc orphan()
  integer n
  n = 5
  print n
end
)");
  EXPECT_EQ(C.Subs.Total, 0u);
}
