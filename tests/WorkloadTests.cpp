//===- tests/WorkloadTests.cpp - workloads/ suite tests -------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The headline check lives here: every generated program must reproduce
// its row of the paper's Tables 2 and 3 exactly, configuration by
// configuration.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suite.h"
#include "workloads/Synthetic.h"

#include "ipcp/Pipeline.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

unsigned countFor(const std::string &Source, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

} // namespace

TEST(WorkloadSuite, HasTwelvePrograms) {
  ASSERT_EQ(benchmarkSuite().size(), 12u);
  EXPECT_EQ(benchmarkSuite().front().Name, "adm");
  EXPECT_EQ(benchmarkSuite().back().Name, "trfd");
}

TEST(WorkloadSuite, CharacteristicsAreSane) {
  for (const WorkloadProgram &P : benchmarkSuite()) {
    ProgramCharacteristics C = measureCharacteristics(P.Source);
    EXPECT_GT(C.Lines, 100u) << P.Name;
    EXPECT_GE(C.Procs, 8u) << P.Name;
    EXPECT_GT(C.MeanLinesPerProc, 1.0) << P.Name;
    EXPECT_GT(C.MedianLinesPerProc, 1.0) << P.Name;
  }
}

TEST(WorkloadSuite, PaperProcCountsMatchWhereKnown) {
  for (const WorkloadProgram &P : benchmarkSuite()) {
    if (P.PaperTable1.Procs < 0)
      continue;
    ProgramCharacteristics C = measureCharacteristics(P.Source);
    EXPECT_EQ(C.Procs, unsigned(P.PaperTable1.Procs)) << P.Name;
  }
}

TEST(MeasureCharacteristics, IgnoresCommentsAndBlanks) {
  ProgramCharacteristics C = measureCharacteristics(
      "! header\n\nproc main()\n  ! comment line\n  print 1\n\nend\n");
  EXPECT_EQ(C.Lines, 3u);
  EXPECT_EQ(C.Procs, 1u);
  EXPECT_EQ(C.MeanLinesPerProc, 3.0);
}

TEST(MeasureCharacteristics, MedianOfTwoProcs) {
  ProgramCharacteristics C = measureCharacteristics(
      "proc main()\nend\nproc f(a)\n  print a\n  print a\nend\n");
  EXPECT_EQ(C.Procs, 2u);
  EXPECT_EQ(C.MedianLinesPerProc, 3.0); // (2 + 4) / 2.
}

TEST(Synthetic, GeneratesValidProgramsAcrossSizes) {
  for (int Procs : {4, 16, 64}) {
    SyntheticSpec Spec;
    Spec.Procs = Procs;
    PipelineResult R =
        runPipeline(generateSynthetic(Spec), PipelineOptions());
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(Synthetic, FindsConstantsThroughItsCallDag) {
  SyntheticSpec Spec;
  Spec.Procs = 12;
  PipelineResult R =
      runPipeline(generateSynthetic(Spec), PipelineOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.SubstitutedConstants, 0u);
}

TEST(Synthetic, DeterministicForEqualSpecs) {
  SyntheticSpec Spec;
  Spec.Procs = 10;
  EXPECT_EQ(generateSynthetic(Spec), generateSynthetic(Spec));
}

//===----------------------------------------------------------------------===//
// Paper-exact reproduction, one test per (program, configuration).
//===----------------------------------------------------------------------===//

class PaperNumbersTest : public ::testing::TestWithParam<size_t> {
protected:
  const WorkloadProgram &program() const {
    return benchmarkSuite()[GetParam()];
  }
};

TEST_P(PaperNumbersTest, Table2PolynomialWithRjf) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::Polynomial;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.Polynomial));
}

TEST_P(PaperNumbersTest, Table2PassThroughWithRjf) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::PassThrough;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.PassThrough));
}

TEST_P(PaperNumbersTest, Table2IntraConstWithRjf) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::IntraConst;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.IntraConst));
}

TEST_P(PaperNumbersTest, Table2LiteralWithRjf) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::Literal;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.Literal));
}

TEST_P(PaperNumbersTest, Table2PolynomialNoRjf) {
  PipelineOptions Opts;
  Opts.UseReturnJumpFunctions = false;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.PolynomialNoRjf));
}

TEST_P(PaperNumbersTest, Table2PassThroughNoRjf) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::PassThrough;
  Opts.UseReturnJumpFunctions = false;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.PassThroughNoRjf));
}

TEST_P(PaperNumbersTest, Table3PolynomialWithoutMod) {
  PipelineOptions Opts;
  Opts.UseMod = false;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.PolyNoMod));
}

TEST_P(PaperNumbersTest, Table3CompletePropagation) {
  PipelineOptions Opts;
  Opts.CompletePropagation = true;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.Complete));
}

TEST_P(PaperNumbersTest, Table3IntraproceduralPropagation) {
  PipelineOptions Opts;
  Opts.IntraproceduralOnly = true;
  EXPECT_EQ(countFor(program().Source, Opts),
            unsigned(program().Paper.IntraOnly));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PaperNumbersTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
