//===- tests/CloningTests.cpp - ipcp/Cloning unit tests -------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Cloning.h"

#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

unsigned countConstants(const std::string &Source) {
  PipelineResult R = runPipeline(Source, PipelineOptions());
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

void expectValid(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << Source;
}

} // namespace

TEST(Cloning, RecoversConflictingConstants) {
  const char *Source = R"(proc main()
  call f(1)
  call f(2)
end
proc f(x)
  print x
  print x + x
end
)";
  unsigned Before = countConstants(Source);
  EXPECT_EQ(Before, 0u); // The meet kills x.
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ClonesCreated, 1u);
  expectValid(R.Source);
  // Each clone sees its own constant: all six uses (three per copy).
  EXPECT_EQ(countConstants(R.Source), 6u);
}

TEST(Cloning, NoOpWhenConstantsAgree) {
  const char *Source = R"(proc main()
  call f(5)
  call f(5)
end
proc f(x)
  print x
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ClonesCreated, 0u);
  EXPECT_EQ(R.Rounds, 0u);
  EXPECT_EQ(R.Source, Source);
}

TEST(Cloning, NoOpWhenSomeEdgeIsNotConstant) {
  const char *Source = R"(proc main()
  integer v
  read v
  call f(1)
  call f(v)
end
proc f(x)
  print x
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok);
  // Cloning cannot make x constant on the read edge: skip.
  EXPECT_EQ(R.ClonesCreated, 0u);
}

TEST(Cloning, GroupsSitesBySignature) {
  const char *Source = R"(proc main()
  call f(1, 9)
  call f(2, 9)
  call f(1, 9)
end
proc f(x, y)
  print x * y
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Two signatures (x=1 and x=2): one clone; y stays shared.
  EXPECT_EQ(R.ClonesCreated, 1u);
  expectValid(R.Source);
  EXPECT_EQ(countConstants(R.Source), 4u); // x and y in both copies.
}

TEST(Cloning, CascadesThroughRounds) {
  const char *Source = R"(proc main()
  call stage1(10)
  call stage1(20)
end
proc stage1(k)
  call stage2(k)
end
proc stage2(m)
  print m
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Round 1 clones stage1; round 2 sees stage2 with signatures {10, 20}
  // and clones it too.
  EXPECT_EQ(R.ClonesCreated, 2u);
  EXPECT_EQ(R.Rounds, 2u);
  expectValid(R.Source);
  EXPECT_GE(countConstants(R.Source), 4u);
}

TEST(Cloning, SkipsRecursiveProcedures) {
  const char *Source = R"(proc main()
  call fib(10)
  call fib(20)
end
proc fib(n)
  if (n > 1) then
    call fib(n - 1)
  end if
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ClonesCreated, 0u);
}

TEST(Cloning, RespectsCloneBudget) {
  std::string Source = "proc main()\n";
  for (int I = 0; I < 10; ++I)
    Source += "  call f(" + std::to_string(I) + ")\n";
  Source += "end\nproc f(x)\n  print x\nend\n";
  CloneOptions Opts;
  Opts.MaxClones = 3;
  CloneResult R = cloneForConstants(Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ClonesCreated, 3u);
  expectValid(R.Source);
}

TEST(Cloning, ClonedBodiesKeepLocalState) {
  const char *Source = R"(array buf(16)
proc main()
  call f(1)
  call f(2)
end
proc f(x)
  integer acc
  array scratch(4)
  acc = x * 3
  scratch(1) = acc
  print acc + scratch(1)
end
)";
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ClonesCreated, 1u);
  expectValid(R.Source);
  EXPECT_NE(R.Source.find("proc f__c"), std::string::npos);
  EXPECT_NE(R.Source.find("array scratch(4)"), std::string::npos);
}

TEST(Cloning, ReportsErrorsOnBadInput) {
  CloneResult R = cloneForConstants("proc main(\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(Cloning, SuiteIsANegativeControl) {
  // The generated workloads route conflicting constants to distinct
  // procedures by construction, so cloning must find nothing (spot-check
  // two small members to keep the test fast).
  for (const WorkloadProgram &P : benchmarkSuite()) {
    if (P.Name != "trfd" && P.Name != "mdg")
      continue;
    CloneResult R = cloneForConstants(P.Source);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.ClonesCreated, 0u) << P.Name;
  }
}
