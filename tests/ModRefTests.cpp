//===- tests/ModRefTests.cpp - analysis/ModRef unit tests -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ModRef.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(ModRef, DirectModOfFormal) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  call set(x)
end
proc set(o)
  o = 5
end
)");
  ProcId Set = A.proc("set");
  EXPECT_TRUE(A.MRI->mods(Set, A.symbolIn("set", "o")));
}

TEST(ModRef, ReadModifiesItsTarget) {
  FullAnalysis A = analyze(R"(global g
proc main()
  call input()
  print g
end
proc input()
  read g
end
)");
  EXPECT_TRUE(A.MRI->mods(A.proc("input"), A.symbol("g")));
}

TEST(ModRef, PureUseIsRefNotMod) {
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 1
  call show()
end
proc show()
  print g
end
)");
  ProcId Show = A.proc("show");
  SymbolId G = A.symbol("g");
  EXPECT_FALSE(A.MRI->mods(Show, G));
  EXPECT_TRUE(A.MRI->refs(Show, G));
}

TEST(ModRef, LocalsNeverInSummaries) {
  FullAnalysis A = analyze(R"(proc main()
  integer t
  t = 1
  print t
end
)");
  ProcId Main = A.proc("main");
  EXPECT_FALSE(A.MRI->mods(Main, A.symbolIn("main", "t")));
}

TEST(ModRef, TransitiveThroughFormalBinding) {
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 1
  call outer()
end
proc outer()
  call setg()
end
proc setg()
  g = 2
end
)");
  // outer transitively modifies g through setg.
  EXPECT_TRUE(A.MRI->mods(A.proc("outer"), A.symbol("g")));
}

TEST(ModRef, FormalEffectMapsThroughActual) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call wrap(v)
end
proc wrap(a)
  call set(a)
end
proc set(o)
  o = 1
end
)");
  // wrap's formal a is modified because it is passed to set.
  EXPECT_TRUE(A.MRI->mods(A.proc("wrap"), A.symbolIn("wrap", "a")));
}

TEST(ModRef, ExpressionActualsDoNotPropagateMod) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  v = 3
  call wrap(v)
end
proc wrap(a)
  call set(a + 0)
end
proc set(o)
  o = 1
end
)");
  // The callee modifies a temporary, not wrap's formal.
  EXPECT_FALSE(A.MRI->mods(A.proc("wrap"), A.symbolIn("wrap", "a")));
}

TEST(ModRef, ArraysTracked) {
  FullAnalysis A = analyze(R"(array buf(8)
proc main()
  call fill()
  call dump()
end
proc fill()
  buf(1) = 2
end
proc dump()
  print buf(1)
end
)");
  SymbolId Buf = A.symbol("buf");
  EXPECT_TRUE(A.MRI->mods(A.proc("fill"), Buf));
  EXPECT_FALSE(A.MRI->mods(A.proc("dump"), Buf));
  EXPECT_TRUE(A.MRI->refs(A.proc("dump"), Buf));
  // And transitively into main.
  EXPECT_TRUE(A.MRI->mods(A.proc("main"), Buf));
}

TEST(ModRef, RecursionConverges) {
  FullAnalysis A = analyze(R"(global g
proc main()
  call ping(3)
end
proc ping(n)
  if (n > 0) then
    call pong(n - 1)
  end if
end
proc pong(n)
  g = n
  if (n > 0) then
    call ping(n - 1)
  end if
end
)");
  EXPECT_TRUE(A.MRI->mods(A.proc("pong"), A.symbol("g")));
  EXPECT_TRUE(A.MRI->mods(A.proc("ping"), A.symbol("g")));
}

TEST(ModRef, KillSetWithModOnlyKillsModified) {
  FullAnalysis A = analyze(R"(global g
proc main()
  integer x, y
  x = 1
  y = 2
  g = 3
  call partial(x, y)
end
proc partial(a, b)
  a = 7
  print b
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs) {
      if (In.Op != Opcode::Call)
        continue;
      auto Kills = computeCallKills(Main, In, A.Symbols, A.MRI.get());
      // Only x (bound to modified a) is killed; y and g survive.
      ASSERT_EQ(Kills.size(), 1u);
      EXPECT_EQ(Kills[0], A.symbolIn("main", "x"));
    }
}

TEST(ModRef, KillSetWorstCaseKillsAll) {
  FullAnalysis A = analyze(R"(global g
proc main()
  integer x
  x = 1
  call pure(x)
end
proc pure(a)
  print a
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs) {
      if (In.Op != Opcode::Call)
        continue;
      auto Kills = computeCallKills(Main, In, A.Symbols, nullptr);
      EXPECT_EQ(Kills.size(), 2u); // x (by-ref) and g (global).
    }
}

TEST(ModRef, KillSetDeduplicatesRepeatedActual) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  call two(x, x)
end
proc two(a, b)
  a = 2
  b = 3
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs) {
      if (In.Op != Opcode::Call)
        continue;
      auto Kills = computeCallKills(Main, In, A.Symbols, A.MRI.get());
      EXPECT_EQ(Kills.size(), 1u);
    }
}

TEST(ModRef, ConstantActualsAreNeverKilled) {
  FullAnalysis A = analyze(R"(proc main()
  call set(5 + 1)
end
proc set(o)
  o = 1
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs)
      if (In.Op == Opcode::Call)
        EXPECT_TRUE(
            computeCallKills(Main, In, A.Symbols, A.MRI.get()).empty());
}
