//===- tests/LatticeTests.cpp - ipcp/Lattice unit + property tests --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Figure 1 of the paper defines the lattice; these tests pin the meet
// rules and verify the algebraic laws with a parameterized sweep.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Lattice.h"

#include <gtest/gtest.h>

using namespace ipcp;

TEST(Lattice, DefaultIsTop) {
  EXPECT_TRUE(LatticeValue().isTop());
  EXPECT_EQ(LatticeValue(), LatticeValue::top());
}

TEST(Lattice, Constructors) {
  EXPECT_TRUE(LatticeValue::bottom().isBottom());
  LatticeValue C = LatticeValue::constant(-7);
  ASSERT_TRUE(C.isConst());
  EXPECT_EQ(C.value(), -7);
}

TEST(Lattice, MeetTableFromFigure1) {
  LatticeValue T = LatticeValue::top();
  LatticeValue B = LatticeValue::bottom();
  LatticeValue C3 = LatticeValue::constant(3);
  LatticeValue C7 = LatticeValue::constant(7);

  // T ^ any = any.
  EXPECT_EQ(T.meet(T), T);
  EXPECT_EQ(T.meet(C3), C3);
  EXPECT_EQ(T.meet(B), B);
  // _|_ ^ any = _|_.
  EXPECT_EQ(B.meet(T), B);
  EXPECT_EQ(B.meet(C3), B);
  EXPECT_EQ(B.meet(B), B);
  // ci ^ cj.
  EXPECT_EQ(C3.meet(C3), C3);
  EXPECT_EQ(C3.meet(C7), B);
}

TEST(Lattice, Equality) {
  EXPECT_EQ(LatticeValue::constant(4), LatticeValue::constant(4));
  EXPECT_NE(LatticeValue::constant(4), LatticeValue::constant(5));
  EXPECT_NE(LatticeValue::constant(4), LatticeValue::bottom());
  EXPECT_NE(LatticeValue::top(), LatticeValue::bottom());
}

TEST(Lattice, Rendering) {
  EXPECT_EQ(LatticeValue::top().str(), "T");
  EXPECT_EQ(LatticeValue::bottom().str(), "_|_");
  EXPECT_EQ(LatticeValue::constant(12).str(), "12");
}

TEST(Lattice, BoundedDepth) {
  // "the value associated with some formal parameter x can be lowered at
  // most twice" (paper §2).
  LatticeValue V = LatticeValue::top();
  unsigned Lowerings = 0;
  for (const LatticeValue &Next :
       {LatticeValue::constant(1), LatticeValue::constant(1),
        LatticeValue::constant(2), LatticeValue::bottom(),
        LatticeValue::constant(3), LatticeValue::top()}) {
    LatticeValue Met = V.meet(Next);
    if (Met != V)
      ++Lowerings;
    V = Met;
  }
  EXPECT_LE(Lowerings, 2u);
  EXPECT_TRUE(V.isBottom());
}

//===----------------------------------------------------------------------===//
// Property sweep: meet is a commutative, associative, idempotent
// lower-bound operator over a representative element set.
//===----------------------------------------------------------------------===//

namespace {

std::vector<LatticeValue> elements() {
  return {LatticeValue::top(),        LatticeValue::bottom(),
          LatticeValue::constant(-1), LatticeValue::constant(0),
          LatticeValue::constant(1),  LatticeValue::constant(7)};
}

/// x <= y in lattice order (bottom lowest).
bool lessOrEqual(const LatticeValue &X, const LatticeValue &Y) {
  return X.meet(Y) == X;
}

} // namespace

class LatticePairTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LatticePairTest, MeetIsCommutative) {
  auto Elems = elements();
  const LatticeValue &A = Elems[std::get<0>(GetParam())];
  const LatticeValue &B = Elems[std::get<1>(GetParam())];
  EXPECT_EQ(A.meet(B), B.meet(A));
}

TEST_P(LatticePairTest, MeetIsLowerBound) {
  auto Elems = elements();
  const LatticeValue &A = Elems[std::get<0>(GetParam())];
  const LatticeValue &B = Elems[std::get<1>(GetParam())];
  LatticeValue M = A.meet(B);
  EXPECT_TRUE(lessOrEqual(M, A));
  EXPECT_TRUE(lessOrEqual(M, B));
}

TEST_P(LatticePairTest, MeetWithSelfIsIdempotent) {
  auto Elems = elements();
  const LatticeValue &A = Elems[std::get<0>(GetParam())];
  EXPECT_EQ(A.meet(A), A);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, LatticePairTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)));

class LatticeTripleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LatticeTripleTest, MeetIsAssociative) {
  auto Elems = elements();
  const LatticeValue &A = Elems[std::get<0>(GetParam())];
  const LatticeValue &B = Elems[std::get<1>(GetParam())];
  const LatticeValue &C = Elems[std::get<2>(GetParam())];
  EXPECT_EQ(A.meet(B).meet(C), A.meet(B.meet(C)));
}

INSTANTIATE_TEST_SUITE_P(
    AllTriples, LatticeTripleTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6),
                       ::testing::Range(0, 6)));
