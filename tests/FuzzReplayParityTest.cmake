# Corpus replay engine-parity test, run via `cmake -P` (see
# tests/CMakeLists.txt). Every curated corpus entry must replay cleanly
# through the ipcp-fuzz CLI and produce byte-identical stdout under
# --exec=vm and --exec=ast; a bogus engine name must fail loudly.

if(NOT DEFINED FUZZER OR NOT DEFINED CORPUS_DIR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "FUZZER, CORPUS_DIR, and WORK_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(GLOB ENTRIES "${CORPUS_DIR}/*.mf")
list(SORT ENTRIES)
list(LENGTH ENTRIES NUM_ENTRIES)
if(NUM_ENTRIES EQUAL 0)
  message(FATAL_ERROR "no corpus entries under ${CORPUS_DIR}")
endif()

set(FAILURES "")

foreach(ENTRY ${ENTRIES})
  get_filename_component(NAME "${ENTRY}" NAME_WE)
  execute_process(COMMAND ${FUZZER} "--replay=${ENTRY}" --exec=vm
                  RESULT_VARIABLE VM_RC
                  OUTPUT_VARIABLE VM_OUT
                  ERROR_VARIABLE VM_ERR)
  execute_process(COMMAND ${FUZZER} "--replay=${ENTRY}" --exec=ast
                  RESULT_VARIABLE AST_RC
                  OUTPUT_VARIABLE AST_OUT
                  ERROR_VARIABLE AST_ERR)
  if(NOT VM_RC EQUAL 0)
    set(FAILURES "${FAILURES}\n${NAME}: vm replay rc=${VM_RC}: ${VM_OUT}${VM_ERR}")
  endif()
  if(NOT AST_RC EQUAL 0)
    set(FAILURES "${FAILURES}\n${NAME}: ast replay rc=${AST_RC}: ${AST_OUT}${AST_ERR}")
  endif()
  if(NOT VM_OUT STREQUAL AST_OUT)
    set(FAILURES "${FAILURES}\n${NAME}: engines disagree\n--- vm ---\n${VM_OUT}--- ast ---\n${AST_OUT}")
  endif()
endforeach()

# An unknown engine name is a usage error, never a silent default.
execute_process(COMMAND ${FUZZER} --replay=/dev/null --exec=jit
                RESULT_VARIABLE BAD_RC
                OUTPUT_VARIABLE BAD_OUT
                ERROR_VARIABLE BAD_ERR)
if(BAD_RC EQUAL 0 OR NOT BAD_ERR MATCHES "--exec expects vm or ast")
  set(FAILURES "${FAILURES}\nbad_engine: rc=${BAD_RC}, stderr '${BAD_ERR}'")
endif()

if(NOT FAILURES STREQUAL "")
  message(FATAL_ERROR "replay parity failures:${FAILURES}")
endif()
message(STATUS "replay parity: ${NUM_ENTRIES} corpus entries byte-identical on vm and ast")
