//===- tests/SupportTests.cpp - support/ unit tests -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include "lang/Ast.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using namespace ipcp;

TEST(SourceLoc, DefaultIsInvalid) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
}

TEST(SourceLoc, ValidAndString) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(SourceLoc, Equality) {
  EXPECT_EQ(SourceLoc(1, 2), SourceLoc(1, 2));
  EXPECT_NE(SourceLoc(1, 2), SourceLoc(1, 3));
  EXPECT_NE(SourceLoc(1, 2), SourceLoc(2, 2));
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "w");
  Diags.note(SourceLoc(1, 2), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 1), "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(4, 7), "bad thing");
  Diags.warning(SourceLoc(5, 1), "iffy thing");
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("4:7: error: bad thing"), std::string::npos);
  EXPECT_NE(Text.find("5:1: warning: iffy thing"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T;
  T.addHeader({"name", "n"});
  T.addRow({"a", "1"});
  T.addRow({"long", "12345"});
  std::string Out = T.str();
  // The header separator and the padded value column must be present.
  EXPECT_NE(Out.find("-----"), std::string::npos);
  EXPECT_NE(Out.find("    1"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
}

TEST(TablePrinter, HandlesShortRows) {
  TablePrinter T;
  T.addHeader({"a", "b", "c"});
  T.addRow({"x"});
  std::string Out = T.str();
  EXPECT_NE(Out.find('x'), std::string::npos);
}

TEST(TablePrinter, EmptyPrintsNothing) {
  TablePrinter T;
  EXPECT_EQ(T.str(), "");
}

TEST(TablePrinter, WideValuesStretchTheirColumn) {
  // Counter columns in the serve/fuzz stats tables reach 7+ digits; the
  // column must widen to the widest cell (header included) and keep the
  // narrow cells right-aligned underneath it.
  TablePrinter T;
  T.addHeader({"metric", "count"});
  T.addRow({"requests", "12345678"});
  T.addRow({"errors", "9"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("12345678"), std::string::npos);
  // "9" padded to the 8-char column: seven spaces then the digit.
  EXPECT_NE(Out.find("       9"), std::string::npos);
  // Each line ends flush after its last cell — no trailing pad spaces.
  for (size_t Pos = Out.find('\n'); Pos != std::string::npos;
       Pos = Out.find('\n', Pos + 1))
    if (Pos > 0)
      EXPECT_NE(Out[Pos - 1], ' ') << Out;
}

TEST(TablePrinter, NegativeDeltasAlignWithSign) {
  // Delta columns mix signs; the sign is part of the cell and must count
  // toward the column width so "-1234567" and "42" stay aligned.
  TablePrinter T;
  T.addHeader({"bench", "delta"});
  T.addRow({"warm", "-1234567"});
  T.addRow({"cold", "42"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("-1234567"), std::string::npos);
  EXPECT_NE(Out.find("      42"), std::string::npos);
  // Both body rows render to the same width.
  size_t H = Out.find('\n');
  size_t Rule = Out.find('\n', H + 1);
  size_t R1 = Out.find('\n', Rule + 1);
  size_t R2 = Out.find('\n', R1 + 1);
  ASSERT_NE(R2, std::string::npos);
  EXPECT_EQ(R1 - Rule, R2 - R1) << Out;
}

TEST(Casting, IsaAndCast) {
  AstContext Ctx;
  Expr *E = Ctx.createExpr<IntLitExpr>(SourceLoc(1, 1), int64_t(42));
  EXPECT_TRUE(isa<IntLitExpr>(E));
  EXPECT_FALSE(isa<VarRefExpr>(E));
  EXPECT_EQ(cast<IntLitExpr>(E)->value(), 42);
  EXPECT_EQ(dyn_cast<VarRefExpr>(E), nullptr);
  EXPECT_NE(dyn_cast<IntLitExpr>(E), nullptr);
}

TEST(Casting, ConstPointers) {
  AstContext Ctx;
  const Expr *E =
      Ctx.createExpr<VarRefExpr>(SourceLoc(1, 1), std::string("x"));
  EXPECT_TRUE(isa<VarRefExpr>(E));
  EXPECT_EQ(cast<VarRefExpr>(E)->name(), "x");
  EXPECT_EQ(dyn_cast<BinaryExpr>(E), nullptr);
}

TEST(AstContext, AssignsUniqueIds) {
  AstContext Ctx;
  Expr *A = Ctx.createExpr<IntLitExpr>(SourceLoc(1, 1), int64_t(1));
  Expr *B = Ctx.createExpr<IntLitExpr>(SourceLoc(1, 2), int64_t(2));
  EXPECT_NE(A->id(), B->id());
  EXPECT_NE(A->id(), 0u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ipcp::ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, PostAndWaitRunsEveryTask) {
  ipcp::ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.post([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  // wait() is a barrier, not a shutdown: the pool accepts work again
  // afterwards (the pipeline reuses one pool across rounds and phases).
  ipcp::ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Batch = 0; Batch != 3; ++Batch) {
    for (int I = 0; I != 10; ++I)
      Pool.post([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Batch + 1) * 10);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ipcp::ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  ipcp::parallelFor(&Pool, N, [&Hits](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForSerialWhenPoolIsNull) {
  // The determinism contract's degenerate case: no pool means the
  // calling thread runs 0..N-1 in order.
  std::vector<size_t> Seen;
  ipcp::parallelFor(nullptr, 5,
                    [&Seen](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ipcp::ThreadPool Pool(8);
  int Calls = 0;
  ipcp::parallelFor(&Pool, 0, [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  // More workers than items must not invent extra indices.
  std::atomic<int> One{0};
  ipcp::parallelFor(&Pool, 1, [&One](size_t I) {
    EXPECT_EQ(I, 0u);
    One.fetch_add(1);
  });
  EXPECT_EQ(One.load(), 1);
}

TEST(ThreadPool, ParallelForSlotWritesAreRaceFree) {
  // The usage pattern every parallel phase relies on: index I writes
  // only slot I, so the fold after the join sees a deterministic value.
  ipcp::ThreadPool Pool(4);
  constexpr size_t N = 512;
  std::vector<long> Slots(N, -1);
  ipcp::parallelFor(&Pool, N,
                    [&Slots](size_t I) { Slots[I] = long(I) * 3; });
  long Sum = std::accumulate(Slots.begin(), Slots.end(), 0L);
  EXPECT_EQ(Sum, 3L * (N * (N - 1) / 2));
}
