//===- tests/FunctionTests.cpp - ir/Function + operator semantics ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

//===----------------------------------------------------------------------===//
// MiniFort operator semantics (the constant-folding ground truth).
//===----------------------------------------------------------------------===//

TEST(EvalBinaryOp, Arithmetic) {
  int64_t R = 0;
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Add, 7, 5, R));
  EXPECT_EQ(R, 12);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Sub, 7, 5, R));
  EXPECT_EQ(R, 2);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Mul, -3, 5, R));
  EXPECT_EQ(R, -15);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Div, 17, 5, R));
  EXPECT_EQ(R, 3); // Truncating.
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Div, -17, 5, R));
  EXPECT_EQ(R, -3); // Truncation toward zero.
  EXPECT_TRUE(evalBinaryOp(BinaryOp::Mod, 17, 5, R));
  EXPECT_EQ(R, 2);
}

TEST(EvalBinaryOp, DivisionByZeroRejected) {
  int64_t R = 99;
  EXPECT_FALSE(evalBinaryOp(BinaryOp::Div, 1, 0, R));
  EXPECT_FALSE(evalBinaryOp(BinaryOp::Mod, 1, 0, R));
  EXPECT_EQ(R, 99); // Untouched on failure.
}

TEST(EvalBinaryOp, RelationalYieldZeroOne) {
  int64_t R;
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpEq, 4, 4, R));
  EXPECT_EQ(R, 1);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpNe, 4, 4, R));
  EXPECT_EQ(R, 0);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpLt, 3, 4, R));
  EXPECT_EQ(R, 1);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpLe, 4, 4, R));
  EXPECT_EQ(R, 1);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpGt, 3, 4, R));
  EXPECT_EQ(R, 0);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::CmpGe, 4, 4, R));
  EXPECT_EQ(R, 1);
}

TEST(EvalBinaryOp, LogicalTreatNonzeroAsTrue) {
  int64_t R;
  EXPECT_TRUE(evalBinaryOp(BinaryOp::LogicalAnd, -7, 2, R));
  EXPECT_EQ(R, 1);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::LogicalAnd, 0, 2, R));
  EXPECT_EQ(R, 0);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::LogicalOr, 0, 0, R));
  EXPECT_EQ(R, 0);
  EXPECT_TRUE(evalBinaryOp(BinaryOp::LogicalOr, 0, 9, R));
  EXPECT_EQ(R, 1);
}

TEST(EvalUnaryOp, NegAndNot) {
  EXPECT_EQ(evalUnaryOp(UnaryOp::Neg, 5), -5);
  EXPECT_EQ(evalUnaryOp(UnaryOp::Neg, -5), 5);
  EXPECT_EQ(evalUnaryOp(UnaryOp::LogicalNot, 0), 1);
  EXPECT_EQ(evalUnaryOp(UnaryOp::LogicalNot, 7), 0);
}

//===----------------------------------------------------------------------===//
// Operand helpers.
//===----------------------------------------------------------------------===//

TEST(Operand, FactoriesAndPredicates) {
  Operand C = Operand::makeConst(-4);
  EXPECT_TRUE(C.isConst());
  EXPECT_EQ(C.ConstValue, -4);
  Operand V = Operand::makeVar(3, 17);
  EXPECT_TRUE(V.isVar());
  EXPECT_EQ(V.Sym, 3u);
  EXPECT_EQ(V.SourceExpr, 17u);
  Operand T = Operand::makeTemp(9);
  EXPECT_TRUE(T.isTemp());
  EXPECT_EQ(T.Temp, 9u);
  EXPECT_TRUE(Operand().isNone());
}

TEST(Instr, ForEachUseVisitsSlotsInOrder) {
  Instr In;
  In.Op = Opcode::Binary;
  In.Src1 = Operand::makeConst(1);
  In.Src2 = Operand::makeConst(2);
  std::vector<int64_t> Seen;
  In.forEachUse([&](const Operand &Op) { Seen.push_back(Op.ConstValue); });
  EXPECT_EQ(Seen, (std::vector<int64_t>{1, 2}));

  Instr Call;
  Call.Op = Opcode::Call;
  Call.Args = {Operand::makeConst(10), Operand::makeConst(20),
               Operand::makeConst(30)};
  Seen.clear();
  Call.forEachUse([&](const Operand &Op) { Seen.push_back(Op.ConstValue); });
  EXPECT_EQ(Seen, (std::vector<int64_t>{10, 20, 30}));
}

TEST(Instr, DefOnlyForValueProducers) {
  Instr Copy;
  Copy.Op = Opcode::Copy;
  Copy.Dst = Operand::makeTemp(0);
  EXPECT_NE(Copy.def(), nullptr);

  Instr Store;
  Store.Op = Opcode::Store;
  EXPECT_EQ(Store.def(), nullptr);
  Instr Print;
  Print.Op = Opcode::Print;
  EXPECT_EQ(Print.def(), nullptr);
  Instr Call;
  Call.Op = Opcode::Call;
  EXPECT_EQ(Call.def(), nullptr); // Kills live in the SSA overlay.
}

//===----------------------------------------------------------------------===//
// Function-level graph utilities over real lowered code.
//===----------------------------------------------------------------------===//

TEST(Function, RpoVisitsEachReachableBlockOnce) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 4
  while (x > 0)
    if (x % 2 == 0) then
      x = x / 2
    else
      x = x - 1
    end if
  end while
end
)");
  const Function &F = A.function("main");
  auto Rpo = F.reversePostOrder();
  std::vector<unsigned> Seen(F.numBlocks(), 0);
  for (BlockId B : Rpo)
    ++Seen[B];
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    EXPECT_EQ(Seen[B], 1u) << "bb" << B;
  EXPECT_EQ(Rpo.front(), F.entry());
}

TEST(Function, RpoOrdersForwardEdgesForward) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  read x
  if (x > 0) then
    x = 1
  else
    x = 2
  end if
  print x
end
)");
  const Function &F = A.function("main");
  auto Rpo = F.reversePostOrder();
  std::vector<uint32_t> Num(F.numBlocks(), 0);
  for (uint32_t I = 0; I != Rpo.size(); ++I)
    Num[Rpo[I]] = I;
  // Acyclic function: every edge goes forward in RPO.
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (BlockId S : F.block(B).Succs)
      EXPECT_LT(Num[B], Num[S]);
}

TEST(Function, InstrAndTempCountsAreConsistent) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1 + 2 * 3
  print x + 4
end
)");
  const Function &F = A.function("main");
  EXPECT_GT(F.numInstrs(), 0u);
  EXPECT_GE(F.numTemps(), 3u); // 2*3, 1+_, x+4.
}

TEST(Function, ExitBlockAlwaysExists) {
  // Even when every path loops forever.
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 0
  while (x == 0)
    x = 0
  end while
end
)");
  const Function &F = A.function("main");
  ASSERT_NE(F.exitBlock(), InvalidBlock);
  EXPECT_EQ(F.block(F.exitBlock()).Instrs.back().Op, Opcode::Ret);
}
