//===- tests/DifferentialTests.cpp - Multi-strategy differential tests ----===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The paper's fixpoint is a property of the lattice and the jump
// functions, not of the iteration order: the worklist scheme, the naive
// round-robin sweep, and the binding multi-graph formulation must land
// on exactly the same VAL sets. This file locks that in as a
// differential property over seeded random programs and the whole
// benchmark suite, at both the SolveResult and the PipelineResult
// granularity.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "ipcp/Solver.h"

#include "TestHelpers.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ipcp;

namespace {

constexpr SolverStrategy kStrategies[] = {SolverStrategy::Worklist,
                                          SolverStrategy::RoundRobin,
                                          SolverStrategy::BindingGraph};

const char *strategyName(SolverStrategy S) {
  switch (S) {
  case SolverStrategy::Worklist:
    return "worklist";
  case SolverStrategy::RoundRobin:
    return "round-robin";
  case SolverStrategy::BindingGraph:
    return "binding-graph";
  }
  return "?";
}

/// Every VAL cell of every procedure, rendered in a canonical order.
/// Effort counters are deliberately excluded: they are where the
/// strategies legitimately differ.
std::string valFingerprint(const SolveResult &S) {
  std::ostringstream OS;
  for (ProcId P = 0; P != S.Val.size(); ++P) {
    OS << 'p' << P << ':';
    for (const auto &[Sym, Value] : S.constants(P))
      OS << " (" << Sym << ',' << Value << ')';
    // Constants alone don't distinguish TOP from BOTTOM; count both.
    size_t Tops = 0, Bottoms = 0;
    for (const auto &[Sym, V] : S.Val[P]) {
      Tops += V.isTop();
      Bottoms += V.isBottom();
    }
    OS << " T=" << Tops << " B=" << Bottoms << '\n';
  }
  return OS.str();
}

std::string sourceFor(uint64_t Seed, bool Recursion) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.Procs = 5 + int(Seed % 5);
  Spec.Globals = 2 + int(Seed % 4);
  Spec.AllowRecursion = Recursion;
  return generateRandomProgram(Spec);
}

} // namespace

//===----------------------------------------------------------------------===//
// SolveResult granularity: identical VAL sets, cell for cell.
//===----------------------------------------------------------------------===//

class SolverDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverDifferentialTest, StrategiesProduceIdenticalValSets) {
  for (bool Recursion : {false, true}) {
    test::FullAnalysis A =
        test::analyze(sourceFor(GetParam(), Recursion));
    JumpFunctionOptions JfOpts; // polynomial + RJF + MOD
    ProgramJumpFunctions Jfs =
        buildJumpFunctions(A.M, A.Symbols, *A.CG, A.MRI.get(), JfOpts);

    SolveResult Base = solveConstants(A.Symbols, *A.CG, Jfs,
                                      SolverStrategy::Worklist);
    std::string BaseFp = valFingerprint(Base);
    for (SolverStrategy S : kStrategies) {
      SolveResult R = solveConstants(A.Symbols, *A.CG, Jfs, S);
      EXPECT_EQ(BaseFp, valFingerprint(R))
          << strategyName(S) << " diverged, seed " << GetParam()
          << (Recursion ? " (recursive)" : "");
      EXPECT_EQ(Base.numConstantCells(), R.numConstantCells());
    }
  }
}

TEST_P(SolverDifferentialTest, StrategiesAgreeWithoutModOrRjf) {
  // The agreement must hold for every jump-function environment, not
  // just the default: worst-case kills (no MOD) and no return jump
  // functions exercise different jf shapes.
  test::FullAnalysis A = test::analyze(sourceFor(GetParam(), false));

  JumpFunctionOptions NoMod;
  NoMod.UseMod = false;
  ProgramJumpFunctions JfsNoMod =
      buildJumpFunctions(A.M, A.Symbols, *A.CG, nullptr, NoMod);

  JumpFunctionOptions NoRjf;
  NoRjf.UseReturnJumpFunctions = false;
  ProgramJumpFunctions JfsNoRjf =
      buildJumpFunctions(A.M, A.Symbols, *A.CG, A.MRI.get(), NoRjf);

  for (const ProgramJumpFunctions *Jfs : {&JfsNoMod, &JfsNoRjf}) {
    std::string BaseFp = valFingerprint(
        solveConstants(A.Symbols, *A.CG, *Jfs, SolverStrategy::Worklist));
    for (SolverStrategy S : kStrategies)
      EXPECT_EQ(BaseFp,
                valFingerprint(solveConstants(A.Symbols, *A.CG, *Jfs, S)))
          << strategyName(S) << " diverged, seed " << GetParam();
  }
}

TEST_P(SolverDifferentialTest, LoweringsAreBoundedByLatticeDepth) {
  // Figure 1's termination argument: each cell lowers at most twice,
  // under every strategy.
  test::FullAnalysis A = test::analyze(sourceFor(GetParam(), false));
  JumpFunctionOptions JfOpts;
  ProgramJumpFunctions Jfs =
      buildJumpFunctions(A.M, A.Symbols, *A.CG, A.MRI.get(), JfOpts);
  size_t Cells = 0;
  for (ProcId P = 0; P != A.CG->numProcs(); ++P)
    Cells += A.Symbols.interproceduralParams(P).size();
  for (SolverStrategy S : kStrategies) {
    SolveResult R = solveConstants(A.Symbols, *A.CG, Jfs, S);
    EXPECT_LE(R.CellLowerings, 2 * Cells) << strategyName(S);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDifferentialTest,
                         ::testing::Range<uint64_t>(1, 31));

//===----------------------------------------------------------------------===//
// PipelineResult granularity: identical CONSTANTS(p) sets end to end.
//===----------------------------------------------------------------------===//

namespace {

std::string constantsFingerprint(const PipelineResult &R) {
  std::ostringstream OS;
  OS << R.SubstitutedConstants << '|' << R.ConstantPrints << '\n';
  for (size_t P = 0; P != R.Constants.size(); ++P) {
    OS << R.ProcNames[P] << ':';
    for (const auto &[Name, Value] : R.Constants[P])
      OS << " (" << Name << ',' << Value << ')';
    OS << '\n';
  }
  for (unsigned N : R.PerProcSubstituted)
    OS << N << ' ';
  for (const std::string &Name : R.NeverCalled)
    OS << Name << ' ';
  return OS.str();
}

} // namespace

class PipelineDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineDifferentialTest, SuiteConstantsAgreeAcrossStrategies) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  std::string BaseFp;
  for (SolverStrategy S : kStrategies) {
    PipelineOptions Opts;
    Opts.Strategy = S;
    PipelineResult R = runPipeline(W.Source, Opts);
    ASSERT_TRUE(R.Ok) << R.Error;
    std::string Fp = constantsFingerprint(R);
    if (BaseFp.empty())
      BaseFp = Fp;
    else
      EXPECT_EQ(BaseFp, Fp) << strategyName(S) << " diverged on "
                            << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PipelineDifferentialTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
