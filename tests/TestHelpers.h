//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers every test file shares: parse-and-check, and a FullAnalysis
/// bundle that runs the front end through MOD so IR-level tests can grab
/// any intermediate structure.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_TESTS_TESTHELPERS_H
#define IPCP_TESTS_TESTHELPERS_H

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "ir/CfgBuilder.h"
#include "ir/Dominators.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ipcp {
namespace test {

/// Parses \p Source and fails the test on any diagnostic.
inline std::unique_ptr<AstContext> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Ctx;
}

/// Everything up to MOD/REF, bundled. Keeps the pieces alive together so
/// tests can poke at any layer.
struct FullAnalysis {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  Module M;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModRefInfo> MRI;

  const Program &program() const { return Ctx->program(); }

  ProcId proc(const std::string &Name) const {
    auto P = Ctx->program().findProc(Name);
    EXPECT_TRUE(P.has_value()) << "no procedure " << Name;
    return *P;
  }

  const Function &function(const std::string &Name) const {
    return M.function(proc(Name));
  }

  SymbolId symbol(const std::string &Name) const {
    for (const Symbol &S : Symbols.symbols())
      if (S.Name == Name)
        return S.Id;
    ADD_FAILURE() << "no symbol " << Name;
    return InvalidSymbol;
  }

  /// Symbol visible in \p Proc (resolves formals/locals owned by it,
  /// else globals).
  SymbolId symbolIn(const std::string &ProcName,
                    const std::string &Name) const {
    ProcId P = proc(ProcName);
    for (const Symbol &S : Symbols.symbols())
      if (S.Name == Name &&
          (S.Owner == P || S.Owner == UINT32_MAX))
        return S.Id;
    ADD_FAILURE() << "no symbol " << Name << " in " << ProcName;
    return InvalidSymbol;
  }
};

/// Runs parse + sema + lowering + call graph + MOD. Fails the test on
/// any front-end error.
inline FullAnalysis analyze(const std::string &Source) {
  FullAnalysis A;
  DiagnosticEngine Diags;
  A.Ctx = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  A.Symbols = Sema::run(*A.Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  A.M = buildModule(A.Ctx->program(), A.Symbols);
  auto Entry = A.Ctx->program().entryProc();
  EXPECT_TRUE(Entry.has_value());
  A.CG = std::make_unique<CallGraph>(A.M, *Entry);
  A.MRI = std::make_unique<ModRefInfo>(A.M, A.Symbols, *A.CG);
  return A;
}

/// Collects the diagnostics of a parse+sema run (for error tests).
inline std::string diagnose(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    Sema::run(*Ctx, Diags);
  return Diags.str();
}

} // namespace test
} // namespace ipcp

#endif // IPCP_TESTS_TESTHELPERS_H
