//===- tests/DominatorTests.cpp - ir/Dominators unit tests ----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "TestHelpers.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(Dominators, EntryDominatesEverything) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  if (x) then
    x = 2
  else
    x = 3
  end if
  while (x > 0)
    x = x - 1
  end while
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  for (BlockId B : DT.reversePostOrder())
    EXPECT_TRUE(DT.dominates(F.entry(), B));
}

TEST(Dominators, DiamondJoinDominatedByBranchBlock) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  if (x) then
    x = 2
  else
    x = 3
  end if
  print x
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  // Find the branch block and the join (the block whose preds are the
  // two arms).
  BlockId BranchBlock = InvalidBlock, Join = InvalidBlock;
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    if (!F.block(B).Instrs.empty() &&
        F.block(B).Instrs.back().Op == Opcode::Branch)
      BranchBlock = B;
    if (F.block(B).Preds.size() == 2)
      Join = B;
  }
  ASSERT_NE(BranchBlock, InvalidBlock);
  ASSERT_NE(Join, InvalidBlock);
  EXPECT_EQ(DT.idom(Join), BranchBlock);
  // Neither arm dominates the join.
  for (BlockId Arm : F.block(Join).Preds)
    if (Arm != BranchBlock)
      EXPECT_FALSE(DT.dominates(Arm, Join));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 5
  while (x > 0)
    x = x - 1
  end while
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  // The loop header is the target of a back edge.
  // The loop header is the target of a back edge: an edge whose source
  // the target dominates. Identify it structurally as the block with two
  // predecessors (preheader and latch).
  BlockId Header = InvalidBlock, Latch = InvalidBlock;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (BlockId S : F.block(B).Succs)
      if (S <= B && F.block(S).Preds.size() == 2) {
        Header = S;
        Latch = B;
      }
  ASSERT_NE(Header, InvalidBlock);
  EXPECT_TRUE(DT.dominates(Header, Latch));
  EXPECT_FALSE(DT.dominates(Latch, Header));
}

TEST(Dominators, FrontierOfArmsIsJoin) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  if (x) then
    x = 2
  else
    x = 3
  end if
  print x
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  BlockId Join = InvalidBlock;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (F.block(B).Preds.size() == 2)
      Join = B;
  ASSERT_NE(Join, InvalidBlock);
  for (BlockId Arm : F.block(Join).Preds) {
    const auto &DF = DT.frontier(Arm);
    EXPECT_NE(std::find(DF.begin(), DF.end(), Join), DF.end());
  }
  // The entry's frontier is empty (it dominates everything).
  EXPECT_TRUE(DT.frontier(F.entry()).empty());
}

TEST(Dominators, RpoStartsAtEntry) {
  FullAnalysis A = analyze("proc main()\nend\n");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  ASSERT_FALSE(DT.reversePostOrder().empty());
  EXPECT_EQ(DT.reversePostOrder().front(), F.entry());
}

//===----------------------------------------------------------------------===//
// Property checks over the whole workload suite: classic dominator-tree
// invariants must hold for every function of every program.
//===----------------------------------------------------------------------===//

class DominatorSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DominatorSuiteTest, InvariantsHoldForEveryFunction) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  FullAnalysis A = analyze(W.Source);
  for (const auto &FPtr : A.M.Functions) {
    const Function &F = *FPtr;
    DominatorTree DT(F);
    const auto &Rpo = DT.reversePostOrder();
    std::vector<uint32_t> RpoNum(F.numBlocks(), UINT32_MAX);
    for (uint32_t I = 0; I != Rpo.size(); ++I)
      RpoNum[Rpo[I]] = I;

    for (BlockId B : Rpo) {
      if (B == F.entry()) {
        EXPECT_EQ(DT.idom(B), B);
        continue;
      }
      BlockId Idom = DT.idom(B);
      ASSERT_NE(Idom, InvalidBlock);
      // The idom strictly precedes B in reverse postorder.
      EXPECT_LT(RpoNum[Idom], RpoNum[B]);
      // The idom dominates B; B does not dominate its idom.
      EXPECT_TRUE(DT.dominates(Idom, B));
      EXPECT_FALSE(DT.dominates(B, Idom));
      // Every predecessor is dominated by... no; but every pred P of B
      // satisfies: idom(B) dominates P (when P is reachable).
      for (BlockId P : F.block(B).Preds)
        if (DT.isReachable(P))
          EXPECT_TRUE(DT.dominates(Idom, P))
              << F.name() << " bb" << B;
      // Dominator-tree children agree with idom.
      for (BlockId C : DT.children(B))
        EXPECT_EQ(DT.idom(C), B);
      // Frontier property: B does not strictly dominate its frontier
      // nodes, but dominates a predecessor of each.
      for (BlockId FrB : DT.frontier(B)) {
        EXPECT_TRUE(FrB == B || !DT.dominates(B, FrB));
        bool DominatesSomePred = false;
        for (BlockId P : F.block(FrB).Preds)
          if (DT.isReachable(P) && DT.dominates(B, P))
            DominatesSomePred = true;
        EXPECT_TRUE(DominatesSomePred);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DominatorSuiteTest,
    ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
