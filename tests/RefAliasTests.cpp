//===- tests/RefAliasTests.cpp - analysis/RefAlias unit tests -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Call-by-reference aliasing: which (procedure, symbol) values must the
// per-procedure analyses refuse to trust? Each shape here was distilled
// from a translation-validation counterexample (see OracleFuzzTests),
// so the pipeline-level cases double as regression tests for real
// miscompiles the oracle caught.
//
//===----------------------------------------------------------------------===//

#include "analysis/RefAlias.h"

#include "exec/Oracle.h"
#include "ipcp/Pipeline.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

RefAliasInfo aliasesOf(const FullAnalysis &A) {
  return RefAliasInfo(A.M, A.Symbols, A.MRI.get());
}

/// Runs a full validation under the intraprocedural-constants forward
/// jump function — the kind that evaluates non-literal actuals (like a
/// global's current value) at call sites, and therefore the first to
/// miscompile when aliasing is ignored.
OracleResult validateIntraConst(const std::string &Source) {
  OracleOptions Opts;
  Opts.Pipeline.Kind = JumpFunctionKind::IntraConst;
  Opts.Pipeline.EmitTransformedSource = true;
  return validateTranslation(Source, Opts);
}

} // namespace

TEST(RefAlias, GlobalPassedByReferenceToModifyingCallee) {
  // f's formal x is bound to the location of g; f stores through g, so
  // both names of the pair are unstable inside f.
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 85
  call f(g)
end
proc f(x)
  g = 3
  print 11 % x
end
)");
  RefAliasInfo Aliases = aliasesOf(A);
  EXPECT_GE(Aliases.numAliasPairs(), 1u);
  ProcId F = A.proc("f");
  EXPECT_TRUE(Aliases.unstable(F, A.symbolIn("f", "x")));
  EXPECT_TRUE(Aliases.unstable(F, A.symbol("g")));
  // main never sees the pair: its own locals stay stable.
  EXPECT_FALSE(Aliases.unstable(A.proc("main"), A.symbol("g")));
}

TEST(RefAlias, UnmodifiedAliasPairStaysStable) {
  // Same binding shape, but nobody stores through either name: with MOD
  // information the pair is harmless and costs no precision.
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 85
  call f(g)
end
proc f(x)
  print x + g
end
)");
  RefAliasInfo Aliases = aliasesOf(A);
  EXPECT_GE(Aliases.numAliasPairs(), 1u);
  ProcId F = A.proc("f");
  EXPECT_FALSE(Aliases.unstable(F, A.symbolIn("f", "x")));
  EXPECT_FALSE(Aliases.unstable(F, A.symbol("g")));

  // Without MOD the same pair must be assumed modified.
  RefAliasInfo NoMod(A.M, A.Symbols, nullptr);
  EXPECT_TRUE(NoMod.unstable(F, A.symbolIn("f", "x")));
}

TEST(RefAlias, FormalForwardedTransitively) {
  // The binding relation composes through call chains: g reaches b's
  // formal y via a's formal x, and b's store makes every link unstable.
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 1
  call a(g)
end
proc a(x)
  call b(x)
  print x
end
proc b(y)
  y = 2
end
)");
  RefAliasInfo Aliases = aliasesOf(A);
  EXPECT_TRUE(Aliases.unstable(A.proc("b"), A.symbolIn("b", "y")));
  EXPECT_TRUE(Aliases.unstable(A.proc("a"), A.symbolIn("a", "x")));
}

TEST(RefAlias, DistinctLocalsDoNotAlias) {
  // Two different caller locals bind two formals: no pair, nothing
  // unstable, full precision retained.
  FullAnalysis A = analyze(R"(proc main()
  integer u, v
  u = 1
  v = 2
  call f(u, v)
end
proc f(a, b)
  a = b + 10
  print a
end
)");
  RefAliasInfo Aliases = aliasesOf(A);
  EXPECT_EQ(Aliases.numAliasPairs(), 0u);
  EXPECT_EQ(Aliases.numUnstable(), 0u);

  PipelineResult R = runPipeline(R"(proc main()
  integer u, v
  u = 1
  v = 2
  call f(u, v)
end
proc f(a, b)
  a = b + 10
  print a
end
)",
                                 PipelineOptions());
  ASSERT_TRUE(R.Ok) << R.Error;
  // b=2 flows in cleanly, so b+10 and the print of a both fold.
  EXPECT_GE(R.SubstitutedConstants, 2u);
}

TEST(RefAlias, AliasedStoreIsNotSubstitutedAway) {
  // Distilled from oracle fuzz seed 132: the caller's intraprocedural
  // constant g=85 reaches f's formal via an IntraConst jump function,
  // but f reassigns g before reading x — through the alias, x is 3, not
  // 85. The unsound analyzer substituted `11 % 85`; execution observes
  // `11 % 3`. The alias mask must suppress the substitution and the
  // oracle must agree with execution.
  const std::string Source = R"(global g
proc main()
  g = 85
  call f(g)
end
proc f(x)
  g = 4 - 16 / 11
  print 11 % x
end
)";
  PipelineOptions PO;
  PO.Kind = JumpFunctionKind::IntraConst;
  PO.EmitTransformedSource = true;
  PipelineResult R = runPipeline(Source, PO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TransformedSource.find("11 % 85"), std::string::npos)
      << R.TransformedSource;
  EXPECT_GE(R.AliasUnstableSymbols, 2u);

  OracleResult V = validateIntraConst(Source);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_EQ(V.ConstantMismatches, 0u);
}

TEST(RefAlias, SameVariableTwiceValidatesUnderOracle) {
  // The sibling-formal pair (EdgeCase.SameVariablePassedTwice...) under
  // end-to-end validation: whatever the analyzer now claims must match
  // execution.
  OracleResult V = validateIntraConst(R"(proc main()
  integer v
  v = 1
  call f(v, v)
  print v
end
proc f(a, b)
  a = b + 10
  print a + b
end
)");
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_GT(V.TraceComparisons, 0u);
}
