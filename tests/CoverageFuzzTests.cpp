//===- tests/CoverageFuzzTests.cpp - Coverage-guided fuzzer tests ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The check-fuzz suite: determinism of the mutation and campaign PRNG
// chains, coverage-driven corpus retention, reducer effectiveness on an
// injected bug, replay of the curated regression corpus under
// tests/corpus/, and a bounded clean campaign across all analyzer
// configurations.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Mutator.h"
#include "fuzz/Reducer.h"
#include "ipcp/Pipeline.h"
#include "support/FuzzFeedback.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace ipcp;

#ifndef IPCP_TEST_CORPUS_DIR
#define IPCP_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace {

std::string seedProgram(uint64_t Seed) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.Procs = 5;
  Spec.Globals = 3;
  return generateRandomProgram(Spec);
}

FuzzOptions quickOptions() {
  FuzzOptions Opts;
  Opts.Seed = 11;
  Opts.Runs = 40; // Raised from 25 with the VM oracle hot path.
  Opts.SeedPrograms = 3;
  Opts.CheckTransforms = false; // The costly part; covered by CleanCampaign.
  Opts.MaxSteps = 20000;
  return Opts;
}

} // namespace

TEST(FuzzFeedback, HookRecordsFeaturesDeterministically) {
  std::string Source = seedProgram(3);
  FuzzFeedback A;
  PipelineOptions Opts;
  Opts.Feedback = &A;
  ASSERT_TRUE(runPipeline(Source, Opts).Ok);
  EXPECT_GT(A.countBits(), 0u);

  // Same program, same config: the identical feature set.
  FuzzFeedback B;
  Opts.Feedback = &B;
  ASSERT_TRUE(runPipeline(Source, Opts).Ok);
  EXPECT_EQ(A.countBits(), B.countBits());
  EXPECT_FALSE(A.wouldAddNovel(B));
  EXPECT_FALSE(B.wouldAddNovel(A));

  // A different configuration behaves differently somewhere.
  FuzzFeedback C;
  PipelineOptions Literal;
  Literal.Kind = JumpFunctionKind::Literal;
  Literal.Feedback = &C;
  ASSERT_TRUE(runPipeline(Source, Literal).Ok);
  EXPECT_TRUE(A.wouldAddNovel(C) || C.countBits() != A.countBits());

  A.clear();
  EXPECT_EQ(A.countBits(), 0u);
  EXPECT_TRUE(A.wouldAddNovel(B));
}

TEST(FuzzMutator, SameSeedSameMutant) {
  std::string Source = seedProgram(5);
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    MutationOptions Opts;
    Opts.Seed = Seed;
    MutationResult First = mutateProgram(Source, Opts);
    MutationResult Second = mutateProgram(Source, Opts);
    EXPECT_EQ(First.Ok, Second.Ok);
    EXPECT_EQ(First.Source, Second.Source);
    EXPECT_EQ(First.Trail, Second.Trail);
    if (First.Ok) {
      EXPECT_FALSE(First.Trail.empty());
      PipelineResult R = runPipeline(First.Source, PipelineOptions());
      EXPECT_TRUE(R.Ok) << R.Error << "\n" << First.Source;
    }
  }
}

TEST(FuzzMutator, ProducesMutantsOnTypicalPrograms) {
  // Across a seed sweep, mutation overwhelmingly succeeds; a rare
  // give-up (all attempts invalid) is tolerated but must be rare.
  unsigned Produced = 0;
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    MutationOptions Opts;
    Opts.Seed = 100 + Seed;
    if (mutateProgram(seedProgram(Seed), Opts).Ok)
      ++Produced;
  }
  EXPECT_GE(Produced, 10u);
}

TEST(FuzzCampaign, DeterministicFromSeed) {
  FuzzOptions Opts = quickOptions();
  FuzzResult First = runFuzzer(Opts);
  FuzzResult Second = runFuzzer(Opts);
  EXPECT_EQ(First.Iterations, Second.Iterations);
  EXPECT_EQ(First.MutantsInvalid, Second.MutantsInvalid);
  EXPECT_EQ(First.MutantsRetained, Second.MutantsRetained);
  EXPECT_EQ(First.CorpusSize, Second.CorpusSize);
  EXPECT_EQ(First.FeatureBits, Second.FeatureBits);
  EXPECT_EQ(First.FeatureBitsTimeline, Second.FeatureBitsTimeline);
  EXPECT_EQ(First.Failures.size(), Second.Failures.size());
}

TEST(FuzzCampaign, CoverageRetentionGrowsFeatureBits) {
  // The acceptance criterion for the coverage map: over a bounded run
  // the corpus feature-bit count strictly grows — retention events
  // happen, and each one lights bits the corpus never had.
  FuzzOptions Opts = quickOptions();
  Opts.Runs = 90; // Raised from 60 with the VM oracle hot path.
  FuzzResult R = runFuzzer(Opts);
  ASSERT_GE(R.FeatureBitsTimeline.size(), 2u)
      << "expected at least two retention events in " << Opts.Runs
      << " runs";
  for (size_t I = 1; I != R.FeatureBitsTimeline.size(); ++I)
    EXPECT_GT(R.FeatureBitsTimeline[I], R.FeatureBitsTimeline[I - 1]);
  EXPECT_EQ(R.FeatureBits, R.FeatureBitsTimeline.back());
  EXPECT_GT(R.MutantsRetained, 0u);
}

TEST(FuzzReducer, ShrinksInjectedBugPreservingFailure) {
  // Plant a detectable "bug": a sink procedure that provably receives
  // the literal 41, buried inside a large random program. The predicate
  // is "the analyzer still proves CONSTANTS(sink) contains q0=41";
  // reduction must shrink the program far below its original size while
  // keeping that property.
  RandomSpec Spec;
  Spec.Seed = 17;
  Spec.Procs = 8;
  Spec.Globals = 4;
  Spec.MaxStmtsPerProc = 12;
  std::string Source = generateRandomProgram(Spec);
  Source += "\nproc sink(q0)\n  print q0\nend\n";
  size_t MainEnd = Source.find("\nend");
  ASSERT_NE(MainEnd, std::string::npos);
  Source.insert(MainEnd, "\n  call sink(41)");

  auto StillFails = [](const std::string &Candidate) {
    PipelineResult R = runPipeline(Candidate, PipelineOptions());
    if (!R.Ok)
      return false;
    for (size_t P = 0; P != R.ProcNames.size(); ++P)
      if (R.ProcNames[P] == "sink")
        for (const auto &Entry : R.Constants[P])
          if (Entry.first == "q0" && Entry.second == 41)
            return true;
    return false;
  };
  ASSERT_TRUE(StillFails(Source));

  ReduceOptions Opts;
  Opts.MaxChecks = 300;
  ReduceResult R = reduceProgram(Source, StillFails, Opts);
  EXPECT_TRUE(R.Reduced);
  EXPECT_TRUE(StillFails(R.Source)) << R.Source;
  // The essence is ~6 lines (main + call + sink); anything under 200
  // bytes means reduction stripped the random program around it.
  EXPECT_LT(R.ReducedBytes, 200u) << R.Source;
  EXPECT_LT(R.ReducedBytes, R.OriginalBytes / 4) << R.Source;
}

TEST(FuzzCorpus, CheckedInRegressionsReplayGreen) {
  std::vector<std::string> Diags;
  std::vector<CorpusEntry> Entries =
      loadCorpusDir(IPCP_TEST_CORPUS_DIR, &Diags);
  for (const std::string &D : Diags)
    ADD_FAILURE() << "checked-in corpus entry rejected: " << D;
  ASSERT_FALSE(Entries.empty())
      << "no corpus entries under " << IPCP_TEST_CORPUS_DIR;
  FuzzOptions Opts;
  Opts.MaxSteps = 30000;
  for (const CorpusEntry &Entry : Entries) {
    FuzzFeedback FB;
    std::optional<FuzzFailure> Fail =
        evaluateProgram(Entry.Source, FB, Opts);
    EXPECT_FALSE(Fail.has_value())
        << Entry.Name << ": " << (Fail ? Fail->Kind : "") << " "
        << (Fail ? Fail->Detail : "") << "\n"
        << Entry.Source;
    EXPECT_GT(FB.countBits(), 0u) << Entry.Name;
  }
}

TEST(FuzzCorpus, MalformedHeadersAreDiagnosedAndSkipped) {
  // Corruptions a real corpus directory accumulates — truncated writes,
  // editor mangling — must never crash or poison a replay: each bad
  // file gets a diagnostic and is skipped; good files still load.
  namespace fs = std::filesystem;
  fs::path Dir = fs::path(::testing::TempDir()) / "ipcp_corpus_malformed";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  auto WriteFile = [&](const char *Name, const std::string &Text) {
    std::ofstream Out(Dir / Name);
    Out << Text;
  };
  WriteFile("a_truncated_magic.mf", "! ipcp-fuzz corp");
  WriteFile("b_garbled_seed.mf",
            "! ipcp-fuzz corpus\n! origin-seed: 12x4\n"
            "proc main()\n  print 1\nend\n");
  WriteFile("c_header_only.mf", "! ipcp-fuzz corpus\n! origin-seed: 7\n");
  WriteFile("d_duplicate_seed.mf",
            "! ipcp-fuzz corpus\n! origin-seed: 1\n! origin-seed: 2\n"
            "proc main()\n  print 1\nend\n");
  WriteFile("e_missing_seed.mf",
            "! ipcp-fuzz corpus\nproc main()\n  print 1\nend\n");
  WriteFile("f_good.mf",
            "! ipcp-fuzz corpus\n! origin-seed: 9\n! trail: arg-const\n"
            "proc main()\n  print 2\nend\n");
  WriteFile("g_bare_program.mf", "proc main()\n  print 3\nend\n");

  std::vector<std::string> Diags;
  std::vector<CorpusEntry> Entries = loadCorpusDir(Dir.string(), &Diags);

  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].Name, "f_good");
  EXPECT_EQ(Entries[0].OriginSeed, 9u);
  EXPECT_EQ(Entries[0].Trail, "arg-const");
  EXPECT_EQ(Entries[1].Name, "g_bare_program");
  EXPECT_EQ(Entries[1].OriginSeed, 0u);

  ASSERT_EQ(Diags.size(), 5u);
  EXPECT_NE(Diags[0].find("a_truncated_magic.mf"), std::string::npos);
  EXPECT_NE(Diags[0].find("garbled magic"), std::string::npos);
  EXPECT_NE(Diags[1].find("garbled origin-seed"), std::string::npos);
  EXPECT_NE(Diags[2].find("no program after metadata header"),
            std::string::npos);
  EXPECT_NE(Diags[3].find("duplicate origin-seed"), std::string::npos);
  EXPECT_NE(Diags[4].find("no origin-seed line"), std::string::npos);

  // A campaign pointed at the corrupted directory replays only the
  // survivors and runs to completion.
  FuzzOptions Opts = quickOptions();
  Opts.Runs = 5;
  Opts.CorpusDir = Dir.string();
  FuzzResult R = runFuzzer(Opts);
  EXPECT_TRUE(R.Failures.empty());

  fs::remove_all(Dir);
}

TEST(FuzzCampaign, BoundedBudgetAllConfigsClean) {
  // The full evaluation — all ten configurations, cross-config
  // checks, transforms, and the execution oracle — over a small budget
  // must find nothing: the analyzer has no known bugs, so any failure
  // here is a regression (and comes with a reduced reproducer).
  ASSERT_EQ(fuzzConfigs().size(), 10u);
  FuzzOptions Opts;
  Opts.Seed = 23;
  Opts.Runs = 50; // Raised from 30 with the VM oracle hot path.
  Opts.SeedPrograms = 5;
  Opts.CheckTransforms = true;
  FuzzResult R = runFuzzer(Opts);
  for (const FuzzFailure &F : R.Failures)
    ADD_FAILURE() << F.Kind << " (" << F.Config << "): " << F.Detail
                  << "\n" << F.Source;
  EXPECT_EQ(R.Iterations, Opts.Runs);
}
