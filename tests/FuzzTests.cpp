//===- tests/FuzzTests.cpp - Seeded random-program property tests ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Structural invariants of the analyzer, checked over a sweep of
// deterministic random programs: the jump-function hierarchy is
// monotone, options never flip the wrong way, both solver strategies
// agree, and every source-to-source transform yields a valid program
// with consistent analysis results.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Cloning.h"
#include "ipcp/Inliner.h"
#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

std::string programFor(uint64_t Seed, bool Recursion = false) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.Procs = 5 + int(Seed % 4);
  Spec.Globals = 2 + int(Seed % 3);
  Spec.AllowRecursion = Recursion;
  return generateRandomProgram(Spec);
}

unsigned countFor(const std::string &Source, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

PipelineOptions withKind(JumpFunctionKind Kind) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  return Opts;
}

// The sound form of the jump-function hierarchy: every CONSTANTS(p)
// entry the weaker configuration proves must also be proven — with the
// same value — by the stronger one. Substituted *counts* are not
// monotone: knowing more constants can fold a branch and unreach
// substitutable uses, so a stronger configuration can report a smaller
// count (the coverage fuzzer found concrete counterexamples; the richer
// program generator reproduces one at seed 9).
testing::AssertionResult constantsSubset(const std::string &Source,
                                         const PipelineOptions &WeakOpts,
                                         const PipelineOptions &StrongOpts) {
  PipelineResult Weak = runPipeline(Source, WeakOpts);
  PipelineResult Strong = runPipeline(Source, StrongOpts);
  if (!Weak.Ok || !Strong.Ok)
    return testing::AssertionFailure()
           << (Weak.Ok ? Strong.Error : Weak.Error);
  for (size_t P = 0; P != Weak.ProcNames.size(); ++P)
    for (const auto &Entry : Weak.Constants[P]) {
      bool Found = false;
      for (size_t Q = 0; Q != Strong.ProcNames.size() && !Found; ++Q)
        if (Strong.ProcNames[Q] == Weak.ProcNames[P])
          for (const auto &Have : Strong.Constants[Q])
            if (Have == Entry) {
              Found = true;
              break;
            }
      if (!Found)
        return testing::AssertionFailure()
               << "CONSTANTS(" << Weak.ProcNames[P] << ") entry "
               << Entry.first << "=" << Entry.second
               << " proven by the weaker config only\n"
               << Source;
    }
  return testing::AssertionSuccess();
}

} // namespace

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, GeneratedProgramIsValid) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(programFor(GetParam()), Diags);
  if (!Diags.hasErrors())
    Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors())
      << Diags.str() << "\n" << programFor(GetParam());
}

TEST_P(FuzzTest, KindHierarchyMonotone) {
  std::string Source = programFor(GetParam());
  EXPECT_TRUE(constantsSubset(Source,
                              withKind(JumpFunctionKind::Literal),
                              withKind(JumpFunctionKind::IntraConst)));
  EXPECT_TRUE(constantsSubset(Source,
                              withKind(JumpFunctionKind::IntraConst),
                              withKind(JumpFunctionKind::PassThrough)));
  EXPECT_TRUE(constantsSubset(Source,
                              withKind(JumpFunctionKind::PassThrough),
                              withKind(JumpFunctionKind::Polynomial)));
}

TEST_P(FuzzTest, OptionsNeverFlipTheWrongWay) {
  std::string Source = programFor(GetParam());

  PipelineOptions NoRjf;
  NoRjf.UseReturnJumpFunctions = false;
  EXPECT_TRUE(constantsSubset(Source, NoRjf, PipelineOptions()));

  PipelineOptions NoMod;
  NoMod.UseMod = false;
  EXPECT_TRUE(constantsSubset(Source, NoMod, PipelineOptions()));

  PipelineOptions Gated;
  Gated.UseGatedSsa = true;
  EXPECT_TRUE(constantsSubset(Source, PipelineOptions(), Gated));

  // The intraprocedural baseline proves no entry constants at all.
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  PipelineResult R = runPipeline(Source, Intra);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (const auto &PerProc : R.Constants)
    EXPECT_TRUE(PerProc.empty());
}

TEST(FuzzSweep, AliasingCallShapesAppear) {
  // The generator's aliasing knob must actually produce the shapes the
  // RefAlias analysis exists for: across the sweep, some programs have
  // may-alias pairs (same variable into two reference formals, or a
  // modified global passed bare), and some of those force unstable
  // symbols.
  unsigned WithPairs = 0;
  unsigned WithUnstable = 0;
  for (uint64_t Seed = 1; Seed != 25; ++Seed) {
    PipelineResult R = runPipeline(programFor(Seed), PipelineOptions());
    ASSERT_TRUE(R.Ok) << R.Error;
    if (R.AliasPairs > 0)
      ++WithPairs;
    if (R.AliasUnstableSymbols > 0)
      ++WithUnstable;
  }
  EXPECT_GT(WithPairs, 0u);
  EXPECT_GT(WithUnstable, 0u);
}

TEST_P(FuzzTest, SolverStrategiesAgree) {
  std::string Source = programFor(GetParam());
  PipelineOptions Worklist;
  PipelineOptions RoundRobin;
  RoundRobin.Strategy = SolverStrategy::RoundRobin;
  PipelineOptions Binding;
  Binding.Strategy = SolverStrategy::BindingGraph;
  unsigned Base = countFor(Source, Worklist);
  EXPECT_EQ(Base, countFor(Source, RoundRobin));
  EXPECT_EQ(Base, countFor(Source, Binding));
}

TEST_P(FuzzTest, IteratedSubstitutionTerminates) {
  // Each substitution round replaces at least one variable use with a
  // literal, so the total variable-use count strictly decreases while
  // any round finds something: iterating must reach a fixed point with
  // zero remaining substitutions.
  std::string Source = programFor(GetParam());
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  bool ReachedFixpoint = false;
  for (int Round = 0; Round < 40; ++Round) {
    PipelineResult R = runPipeline(Source, Opts);
    ASSERT_TRUE(R.Ok) << R.Error << "\n" << Source;
    if (R.SubstitutedConstants == 0) {
      ReachedFixpoint = true;
      break;
    }
    Source = R.TransformedSource;
  }
  EXPECT_TRUE(ReachedFixpoint);
}

TEST_P(FuzzTest, CompletePropagationTerminates) {
  // Complete propagation counts substitutions on the DCE'd program, so
  // its totals are not comparable to the plain run once code has been
  // folded: removing a dead call can unreach an entire procedure and its
  // counted constants (on the paper's suite this never outweighed the
  // gains; on adversarial random programs it can). The stable properties
  // are termination and exact agreement when nothing folds.
  std::string Source = programFor(GetParam());
  unsigned Poly = countFor(Source, PipelineOptions());
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  PipelineResult R = runPipeline(Source, Complete);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_LE(R.DceRounds, 8u) << Source;
  if (R.FoldedBranches == 0)
    EXPECT_EQ(R.SubstitutedConstants, Poly) << Source;
}

TEST_P(FuzzTest, InlinerOutputIsValidAndAnalyzable) {
  std::string Source = programFor(GetParam());
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  InlineResult R = inlineProgram(*Ctx, Symbols);
  PipelineResult Analyzed = runPipeline(R.Source, PipelineOptions());
  EXPECT_TRUE(Analyzed.Ok) << Analyzed.Error << "\n" << R.Source;
}

TEST_P(FuzzTest, CloningOutputIsValidAndNeverLoses) {
  std::string Source = programFor(GetParam());
  CloneResult R = cloneForConstants(Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  unsigned Before = countFor(Source, PipelineOptions());
  unsigned After = countFor(R.Source, PipelineOptions());
  EXPECT_GE(After, Before) << R.Source;
}

TEST_P(FuzzTest, RecursiveProgramsAnalyzeSafely) {
  std::string Source = programFor(GetParam(), /*Recursion=*/true);
  PipelineResult R = runPipeline(Source, PipelineOptions());
  EXPECT_TRUE(R.Ok) << R.Error << "\n" << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 25));
