//===- tests/LexerTests.cpp - lang/Lexer unit tests -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source))
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(Lexer, EmptyInput) {
  auto K = kinds("");
  ASSERT_EQ(K.size(), 1u);
  EXPECT_EQ(K[0], TokenKind::Eof);
}

TEST(Lexer, BlankLinesProduceNoTokens) {
  auto K = kinds("\n\n   \n\t\n");
  ASSERT_EQ(K.size(), 1u);
  EXPECT_EQ(K[0], TokenKind::Eof);
}

TEST(Lexer, IdentifiersAndNewline) {
  auto K = kinds("abc def");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Identifier,
                                       TokenKind::Newline,
                                       TokenKind::Eof}));
}

TEST(Lexer, IdentifierText) {
  auto Tokens = lex("hello_1 _x");
  EXPECT_EQ(Tokens[0].Text, "hello_1");
  EXPECT_EQ(Tokens[1].Text, "_x");
}

TEST(Lexer, Keywords) {
  auto K = kinds("proc if then elseif else end do while call print read "
                 "return global array integer and or not program");
  std::vector<TokenKind> Expected = {
      TokenKind::KwProc,    TokenKind::KwIf,      TokenKind::KwThen,
      TokenKind::KwElseif,  TokenKind::KwElse,    TokenKind::KwEnd,
      TokenKind::KwDo,      TokenKind::KwWhile,   TokenKind::KwCall,
      TokenKind::KwPrint,   TokenKind::KwRead,    TokenKind::KwReturn,
      TokenKind::KwGlobal,  TokenKind::KwArray,   TokenKind::KwInteger,
      TokenKind::KwAnd,     TokenKind::KwOr,      TokenKind::KwNot,
      TokenKind::KwProgram, TokenKind::Newline,   TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, KeywordsAreCaseSensitive) {
  auto Tokens = lex("IF If");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lex("0 42 123456789");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
}

TEST(Lexer, IntegerOverflowDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("99999999999999999999999999", Diags);
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, Operators) {
  auto K = kinds("+ - * / % ( ) , = == != < <= > >=");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,      TokenKind::Minus,   TokenKind::Star,
      TokenKind::Slash,     TokenKind::Percent, TokenKind::LParen,
      TokenKind::RParen,    TokenKind::Comma,   TokenKind::Assign,
      TokenKind::EqEq,      TokenKind::NotEq,   TokenKind::Less,
      TokenKind::LessEq,    TokenKind::Greater, TokenKind::GreaterEq,
      TokenKind::Newline,   TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto K = kinds("a ! this is a comment == != call\nb");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Newline,
                                       TokenKind::Identifier,
                                       TokenKind::Newline,
                                       TokenKind::Eof}));
}

TEST(Lexer, CommentOnlyLineIsInvisible) {
  auto K = kinds("! nothing here\n! nor here\n");
  ASSERT_EQ(K.size(), 1u);
  EXPECT_EQ(K[0], TokenKind::Eof);
}

TEST(Lexer, NotEqualVersusComment) {
  // "!=" is the operator; "! =" starts a comment.
  auto K1 = kinds("a != b");
  EXPECT_EQ(K1[1], TokenKind::NotEq);
  auto K2 = kinds("a ! = b");
  EXPECT_EQ(K2, (std::vector<TokenKind>{TokenKind::Identifier,
                                        TokenKind::Newline,
                                        TokenKind::Eof}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto Tokens = lex("a\n  bb\n");
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  // Tokens[1] is the newline ending line 1.
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(2, 3));
}

TEST(Lexer, InvalidCharacterDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("a # b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("unexpected character"), std::string::npos);
}

TEST(Lexer, MissingTrailingNewlineStillTerminates) {
  auto K = kinds("x = 1");
  EXPECT_EQ(K.back(), TokenKind::Eof);
  EXPECT_EQ(K[K.size() - 2], TokenKind::Newline);
}

TEST(Lexer, CarriageReturnsIgnored) {
  auto K = kinds("a\r\nb\r\n");
  EXPECT_EQ(K, (std::vector<TokenKind>{TokenKind::Identifier,
                                       TokenKind::Newline,
                                       TokenKind::Identifier,
                                       TokenKind::Newline,
                                       TokenKind::Eof}));
}
