//===- tests/ServeTests.cpp - Analysis server tests -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check-serve suite: protocol goldens, the session cache and
/// request coalescing, deadline cancellation, overload shedding,
/// graceful drain, the TCP transport round trip, and the differential
/// test pinning --server-url output byte-identical to local ipcp-driver
/// output.
///
/// Concurrency-sensitive tests are made deterministic with
/// Server::TestHookBeforeCompute: the hook parks the leader computation
/// on a latch while the test arranges followers, queue pressure, or a
/// drain around it — no sleeps, no races on "did it start yet".
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "serve/Server.h"
#include "serve/Transport.h"
#include "support/Cancellation.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

const char *SampleProgram = R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)";

/// Collects asynchronous replies and lets the test block for a count.
struct ReplyBin {
  std::mutex Mutex;
  std::condition_variable Cv;
  std::vector<std::string> Replies;

  std::function<void(std::string)> sink() {
    return [this](std::string R) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Replies.push_back(std::move(R));
      Cv.notify_all();
    };
  }

  std::vector<std::string> waitFor(size_t N) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Replies.size() >= N; });
    return Replies;
  }
};

/// A one-shot gate the test hook parks on.
struct Gate {
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Open = false;
  bool Reached = false;

  void waitOpen() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Reached = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Open; });
  }
  void waitReached() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return Reached; });
  }
  void open() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Open = true;
    Cv.notify_all();
  }
};

std::string analyzeRequest(const std::string &Id, const std::string &Source,
                           const std::string &Extra = "") {
  return "{\"id\":\"" + Id +
         "\",\"method\":\"analyze-source\",\"params\":{\"source\":" +
         JsonValue(Source).dump() + Extra + "}}";
}

JsonValue parsedOk(const std::string &ReplyLine) {
  std::string Err;
  std::optional<JsonValue> V = parseJson(ReplyLine, Err);
  EXPECT_TRUE(V.has_value()) << Err << " in: " << ReplyLine;
  return V ? *V : JsonValue::object();
}

std::string errorKind(const JsonValue &Reply) {
  const JsonValue *E = Reply.find("error");
  return E ? E->strOr("kind", "") : "";
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol goldens
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, ReplyGoldens) {
  JsonValue Payload = JsonValue::object();
  Payload.set("substituted", JsonValue(12));
  EXPECT_EQ(makeOkReply("r1", Payload),
            "{\"id\":\"r1\",\"ok\":true,\"result\":{\"substituted\":12}}");
  EXPECT_EQ(makeErrorReply("r9", ServeErrorKind::Overloaded,
                           "queue full (64 pending)"),
            "{\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full "
            "(64 pending)\"},\"id\":\"r9\",\"ok\":false}");
}

TEST(ServeProtocol, RequestGolden) {
  ServeRequest Req;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(
      "{\"id\":\"a\",\"method\":\"analyze-source\",\"params\":{"
      "\"source\":\"proc main()\\nend\\n\",\"config\":{\"jf\":\"pass\","
      "\"rjf\":false,\"complete\":true},\"report\":{\"stats\":true},"
      "\"deadline_ms\":250}}",
      Req, Err))
      << Err;
  EXPECT_EQ(Req.Id, "a");
  EXPECT_EQ(Req.Method, ServeMethod::AnalyzeSource);
  EXPECT_EQ(Req.Source, "proc main()\nend\n");
  EXPECT_EQ(Req.Config.Kind, JumpFunctionKind::PassThrough);
  EXPECT_FALSE(Req.Config.UseReturnJumpFunctions);
  EXPECT_TRUE(Req.Config.CompletePropagation);
  EXPECT_TRUE(Req.Report.Stats);
  EXPECT_EQ(Req.DeadlineMs, 250);
}

TEST(ServeProtocol, SerializeRoundTrips) {
  ServeRequest Req;
  Req.Id = "rt";
  Req.Method = ServeMethod::AnalyzeSource;
  Req.Source = SampleProgram;
  Req.Config.Kind = JumpFunctionKind::PassThrough;
  Req.Config.UseMod = false;
  Req.Report.Quiet = true;
  Req.DeadlineMs = 1500;

  ServeRequest Back;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(serializeServeRequest(Req), Back, Err)) << Err;
  EXPECT_EQ(Back.Id, "rt");
  EXPECT_EQ(Back.Source, Req.Source);
  EXPECT_EQ(Back.Config.Kind, JumpFunctionKind::PassThrough);
  EXPECT_FALSE(Back.Config.UseMod);
  EXPECT_TRUE(Back.Report.Quiet);
  EXPECT_EQ(Back.DeadlineMs, 1500);
  EXPECT_EQ(configKey(Back.Config, Back.Report),
            configKey(Req.Config, Req.Report));
}

TEST(ServeProtocol, PrecisionFlagsSkewAcrossVersions) {
  // Pre-precision request lines carry no fsa/ogvn keys: a default-config
  // request serializes without them, such a line parses to the flags'
  // defaults, and re-serialization reproduces it byte-identically — old
  // and new peers exchange the same bytes.
  ServeRequest Req;
  Req.Id = "v1";
  Req.Method = ServeMethod::AnalyzeSource;
  Req.Source = "proc main()\nend\n";
  std::string Line = serializeServeRequest(Req);
  EXPECT_EQ(Line.find("fsa"), std::string::npos);
  EXPECT_EQ(Line.find("ogvn"), std::string::npos);

  ServeRequest Back;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(Line, Back, Err)) << Err;
  EXPECT_FALSE(Back.Config.FlowSensitiveAlias);
  EXPECT_FALSE(Back.Config.OptimisticVn);
  EXPECT_EQ(serializeServeRequest(Back), Line);

  // Spelled-out flags parse, round-trip, and split the cache key from
  // the classic configuration.
  std::string DefaultKey = configKey(Req.Config, Req.Report);
  Req.Config.FlowSensitiveAlias = true;
  std::string FsaLine = serializeServeRequest(Req);
  EXPECT_NE(FsaLine.find("\"fsa\":true"), std::string::npos);
  ASSERT_TRUE(parseServeRequest(FsaLine, Back, Err)) << Err;
  EXPECT_TRUE(Back.Config.FlowSensitiveAlias);
  EXPECT_EQ(serializeServeRequest(Back), FsaLine);
  EXPECT_NE(configKey(Back.Config, Back.Report), DefaultKey);

  Req.Config.FlowSensitiveAlias = false;
  Req.Config.OptimisticVn = true;
  ASSERT_TRUE(parseServeRequest(serializeServeRequest(Req), Back, Err)) << Err;
  EXPECT_TRUE(Back.Config.OptimisticVn);
  EXPECT_NE(configKey(Back.Config, Back.Report), DefaultKey);

  // The optional keys stay strictly typed.
  EXPECT_FALSE(parseServeRequest(
      "{\"id\":\"x\",\"method\":\"analyze-source\",\"params\":{"
      "\"source\":\"s\",\"config\":{\"fsa\":\"yes\"}}}",
      Back, Err));
  EXPECT_NE(Err.find("config.fsa must be a boolean"), std::string::npos);
}

TEST(ServeProtocol, CopyFlagSkewAcrossVersions) {
  // Pre-copy request lines carry no copy key: a default-config request
  // serializes without it, such a line parses to the flag's default,
  // and re-serialization reproduces it byte-identically — old and new
  // peers exchange the same bytes.
  ServeRequest Req;
  Req.Id = "v1";
  Req.Method = ServeMethod::AnalyzeSource;
  Req.Source = "proc main()\nend\n";
  std::string Line = serializeServeRequest(Req);
  EXPECT_EQ(Line.find("copy"), std::string::npos);

  ServeRequest Back;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(Line, Back, Err)) << Err;
  EXPECT_FALSE(Back.Config.CopyPropagation);
  EXPECT_EQ(serializeServeRequest(Back), Line);

  // The spelled-out flag parses, round-trips, and splits the cache key
  // from the classic configuration.
  std::string DefaultKey = configKey(Req.Config, Req.Report);
  Req.Config.CopyPropagation = true;
  std::string CopyLine = serializeServeRequest(Req);
  EXPECT_NE(CopyLine.find("\"copy\":true"), std::string::npos);
  ASSERT_TRUE(parseServeRequest(CopyLine, Back, Err)) << Err;
  EXPECT_TRUE(Back.Config.CopyPropagation);
  EXPECT_EQ(serializeServeRequest(Back), CopyLine);
  EXPECT_NE(configKey(Back.Config, Back.Report), DefaultKey);

  // A spelled-out false is tolerated and canonicalizes back to the
  // elided v1 bytes.
  ASSERT_TRUE(parseServeRequest(
      "{\"id\":\"v1\",\"method\":\"analyze-source\",\"params\":{"
      "\"source\":\"proc main()\\nend\\n\",\"config\":{\"copy\":false}}}",
      Back, Err))
      << Err;
  EXPECT_FALSE(Back.Config.CopyPropagation);
  EXPECT_EQ(serializeServeRequest(Back), Line);

  // The optional key stays strictly typed.
  EXPECT_FALSE(parseServeRequest(
      "{\"id\":\"x\",\"method\":\"analyze-source\",\"params\":{"
      "\"source\":\"s\",\"config\":{\"copy\":\"yes\"}}}",
      Back, Err));
  EXPECT_NE(Err.find("config.copy must be a boolean"), std::string::npos);
}

TEST(ServeProtocol, RejectsUnknownFields) {
  ServeRequest Req;
  std::string Err;
  EXPECT_FALSE(parseServeRequest("{\"id\":\"x\",\"method\":\"analyze-source\","
                                 "\"params\":{\"source\":\"s\","
                                 "\"config\":{\"jfx\":\"poly\"}}}",
                                 Req, Err));
  EXPECT_NE(Err.find("unknown config field 'jfx'"), std::string::npos);
  EXPECT_EQ(Req.Id, "x") << "id must be salvaged for the error reply";
}

TEST(ServeProtocol, ContentHashSeparatesFields) {
  EXPECT_NE(contentHash("ab", "c"), contentHash("a", "bc"));
  EXPECT_NE(contentHash("x", ""), contentHash("", "x"));
  EXPECT_EQ(contentHash("src", "cfg"), contentHash("src", "cfg"));
}

//===----------------------------------------------------------------------===//
// Malformed requests never hurt the server
//===----------------------------------------------------------------------===//

TEST(ServeServer, MalformedRequestsGetStructuredReplies) {
  Server S({.Workers = 1, .QueueLimit = 4, .CacheCapacity = 2});
  for (const char *Bad :
       {"not json at all", "[1,2,3]", "{\"id\":\"q\"}",
        "{\"id\":\"q\",\"method\":\"warp\"}",
        "{\"id\":\"q\",\"method\":\"analyze-source\",\"params\":{}}"}) {
    JsonValue Reply = parsedOk(S.handle(Bad));
    EXPECT_FALSE(Reply.boolOr("ok", true)) << Bad;
    EXPECT_EQ(errorKind(Reply), "malformed") << Bad;
  }
  // The server is still healthy after the abuse.
  JsonValue Good = parsedOk(S.handle(analyzeRequest("ok", SampleProgram)));
  EXPECT_TRUE(Good.boolOr("ok", false));
  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  const JsonValue *Result = Stats.find("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->find("errors")->intOr("malformed", -1), 5);
}

TEST(ServeServer, FrontendErrorsAreAnalysisErrors) {
  Server S({.Workers = 1});
  JsonValue R1 = parsedOk(S.handle(analyzeRequest("b1", "proc main(\nend\n")));
  EXPECT_EQ(errorKind(R1), "analysis-error");
  // Repeat: the cached frontend failure answers without reparsing, and
  // the reply is identical apart from the id.
  JsonValue R2 = parsedOk(S.handle(analyzeRequest("b1", "proc main(\nend\n")));
  EXPECT_EQ(errorKind(R2), "analysis-error");
}

TEST(ServeServer, UnknownSuiteProgramIsAnalysisError) {
  Server S({.Workers = 1});
  JsonValue R = parsedOk(
      S.handle("{\"id\":\"s\",\"method\":\"analyze-suite-program\","
               "\"params\":{\"program\":\"nonesuch\"}}"));
  EXPECT_EQ(errorKind(R), "analysis-error");
}

//===----------------------------------------------------------------------===//
// Session cache
//===----------------------------------------------------------------------===//

TEST(ServeServer, RepeatRequestIsServedFromReplyCache) {
  Server S({.Workers = 1, .CacheCapacity = 4});
  JsonValue First = parsedOk(S.handle(analyzeRequest("a", SampleProgram)));
  ASSERT_TRUE(First.boolOr("ok", false));
  EXPECT_FALSE(First.find("result")->boolOr("cached", true));

  JsonValue Second = parsedOk(S.handle(analyzeRequest("b", SampleProgram)));
  ASSERT_TRUE(Second.boolOr("ok", false));
  EXPECT_TRUE(Second.find("result")->boolOr("cached", false));
  EXPECT_EQ(First.find("result")->strOr("output", "L"),
            Second.find("result")->strOr("output", "R"));

  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  const JsonValue *Result = Stats.find("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->find("cache")->intOr("reply_hits", -1), 1);
  EXPECT_EQ(Result->find("cache")->intOr("misses", -1), 1);
}

TEST(ServeServer, NewConfigOnWarmProgramReusesSession) {
  Server S({.Workers = 1, .CacheCapacity = 4});
  ASSERT_TRUE(parsedOk(S.handle(analyzeRequest("a", SampleProgram)))
                  .boolOr("ok", false));
  ASSERT_TRUE(
      parsedOk(S.handle(analyzeRequest("b", SampleProgram,
                                       ",\"config\":{\"jf\":\"pass\"}")))
          .boolOr("ok", false));
  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  const JsonValue *Result = Stats.find("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->find("cache")->intOr("session_hits", -1), 1);
  EXPECT_EQ(Result->find("cache")->intOr("misses", -1), 1);
  EXPECT_EQ(Result->find("cache")->intOr("reply_hits", -1), 0);
}

TEST(ServeServer, LruEvictsLeastRecentProgram) {
  Server S({.Workers = 1, .CacheCapacity = 2});
  // Three distinct programs through a capacity-2 cache (a unique
  // trailing comment changes the content hash, not the analysis).
  for (const char *Tag : {"a", "b", "c"})
    ASSERT_TRUE(parsedOk(S.handle(analyzeRequest(
                             Tag, std::string(SampleProgram) + "! " + Tag +
                                      "\n")))
                    .boolOr("ok", false));
  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  const JsonValue *Result = Stats.find("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->find("cache")->intOr("entries", -1), 2);
  EXPECT_EQ(Result->find("cache")->intOr("evictions", -1), 1);
}

TEST(ServeServer, ServedOutputMatchesLocalRender) {
  Server S({.Workers = 1});
  std::string Extra = ",\"report\":{\"stats\":true}";
  JsonValue Reply = parsedOk(S.handle(analyzeRequest("r", SampleProgram,
                                                     Extra)));
  ASSERT_TRUE(Reply.boolOr("ok", false));

  PipelineOptions Opts;
  ReportOptions Report;
  Report.Stats = true;
  PipelineResult Local = runPipeline(SampleProgram, Opts);
  ASSERT_TRUE(Local.Ok);
  EXPECT_EQ(Reply.find("result")->strOr("output", ""),
            renderAnalysisReport(Opts, Local, Report));
}

//===----------------------------------------------------------------------===//
// Coalescing
//===----------------------------------------------------------------------===//

TEST(ServeServer, IdenticalInflightRequestsCoalesce) {
  Server S({.Workers = 2, .QueueLimit = 16});
  Gate G;
  S.TestHookBeforeCompute = [&](const ServeRequest &) { G.waitOpen(); };

  ReplyBin Bin;
  S.submit(analyzeRequest("leader", SampleProgram), Bin.sink());
  G.waitReached(); // Leader is parked inside compute.
  for (int I = 0; I != 3; ++I)
    S.submit(analyzeRequest("follower" + std::to_string(I), SampleProgram),
             Bin.sink());
  G.open();

  std::vector<std::string> Replies = Bin.waitFor(4);
  for (const std::string &Line : Replies) {
    JsonValue R = parsedOk(Line);
    EXPECT_TRUE(R.boolOr("ok", false)) << Line;
  }
  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  EXPECT_EQ(Stats.find("result")->intOr("coalesced", -1), 3);
  // One computation: a single cold miss, no reply hits.
  EXPECT_EQ(Stats.find("result")->find("cache")->intOr("misses", -1), 1);
  EXPECT_EQ(Stats.find("result")->find("cache")->intOr("reply_hits", -1), 0);

  // All four replies agree apart from the id.
  for (std::string Line : Replies) {
    JsonValue R = parsedOk(Line);
    R.set("id", JsonValue("x"));
    JsonValue First = parsedOk(Replies[0]);
    First.set("id", JsonValue("x"));
    EXPECT_EQ(R.dump(), First.dump());
  }
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST(ServeCancellation, PipelineHonoursCancelledToken) {
  CancelToken Token;
  Token.cancel();
  PipelineOptions Opts;
  Opts.Cancel = &Token;
  PipelineResult R = runPipeline(SampleProgram, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Cancelled);
}

TEST(ServeCancellation, ExpiredDeadlineTokenReportsExpiry) {
  CancelToken Token;
  Token.setDeadlineAfterMs(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(Token.expired());
}

TEST(ServeServer, DeadlineExpiryYieldsDeadlineReply) {
  Server S({.Workers = 1});
  // Park the doomed request until its 5ms deadline has certainly
  // expired; the pre-compute deadline check then fires
  // deterministically. Keyed on the id so the health-check request
  // after it is not delayed.
  S.TestHookBeforeCompute = [&](const ServeRequest &Req) {
    if (Req.Id == "d")
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
  };
  JsonValue R = parsedOk(
      S.handle(analyzeRequest("d", SampleProgram, ",\"deadline_ms\":5")));
  EXPECT_FALSE(R.boolOr("ok", true));
  EXPECT_EQ(errorKind(R), "deadline");

  // The server is healthy afterwards.
  EXPECT_TRUE(parsedOk(S.handle(analyzeRequest("ok", SampleProgram)))
                  .boolOr("ok", false));
  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  EXPECT_EQ(Stats.find("result")->find("errors")->intOr("deadline", -1), 1);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(ServeServer, OverloadShedsWithStructuredReply) {
  Server S({.Workers = 1, .QueueLimit = 2});
  Gate G;
  S.TestHookBeforeCompute = [&](const ServeRequest &) { G.waitOpen(); };

  ReplyBin Bin;
  // Two distinct programs fill the queue (1 computing + 1 queued).
  S.submit(analyzeRequest("q1", std::string(SampleProgram) + "! q1\n"),
           Bin.sink());
  G.waitReached();
  S.submit(analyzeRequest("q2", std::string(SampleProgram) + "! q2\n"),
           Bin.sink());

  // The third is shed synchronously.
  JsonValue Shed = parsedOk(
      S.handle(analyzeRequest("q3", std::string(SampleProgram) + "! q3\n")));
  EXPECT_FALSE(Shed.boolOr("ok", true));
  EXPECT_EQ(errorKind(Shed), "overloaded");

  G.open();
  for (const std::string &Line : Bin.waitFor(2))
    EXPECT_TRUE(parsedOk(Line).boolOr("ok", false)) << Line;

  JsonValue Stats = parsedOk(S.handle("{\"method\":\"stats\"}"));
  EXPECT_EQ(Stats.find("result")->find("errors")->intOr("overloaded", -1), 1);
  EXPECT_EQ(Stats.find("result")->intOr("queue_high_water", -1), 2);
  EXPECT_EQ(Stats.find("result")->intOr("pending", -1), 0);
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(ServeServer, ShutdownDrainsInflightAndRejectsNew) {
  Server S({.Workers = 1, .QueueLimit = 8});
  Gate G;
  S.TestHookBeforeCompute = [&](const ServeRequest &) { G.waitOpen(); };

  ReplyBin Bin;
  S.submit(analyzeRequest("inflight", SampleProgram), Bin.sink());
  G.waitReached();

  // Begin the drain via the protocol.
  JsonValue Ack = parsedOk(S.handle("{\"id\":\"down\",\"method\":\"shutdown\"}"));
  EXPECT_TRUE(Ack.boolOr("ok", false));
  EXPECT_TRUE(S.draining());
  EXPECT_EQ(Ack.find("result")->intOr("pending", -1), 1);

  // New compute traffic is refused; stats still answers.
  JsonValue Refused = parsedOk(S.handle(analyzeRequest("late", SampleProgram)));
  EXPECT_EQ(errorKind(Refused), "shutting-down");
  EXPECT_TRUE(parsedOk(S.handle("{\"method\":\"stats\"}")).boolOr("ok", false));

  std::thread Drainer([&] { S.shutdown(); });
  G.open();
  Drainer.join();

  // The in-flight request completed successfully during the drain.
  std::vector<std::string> Replies = Bin.waitFor(1);
  EXPECT_TRUE(parsedOk(Replies[0]).boolOr("ok", false)) << Replies[0];
  EXPECT_EQ(S.pending(), 0u);
}

//===----------------------------------------------------------------------===//
// Other methods
//===----------------------------------------------------------------------===//

TEST(ServeServer, ValidateMethodRunsOracle) {
  Server S({.Workers = 1});
  JsonValue R = parsedOk(
      S.handle("{\"id\":\"v\",\"method\":\"validate\",\"params\":{"
               "\"source\":" +
               JsonValue(SampleProgram).dump() + ",\"max_steps\":10000}}"));
  ASSERT_TRUE(R.boolOr("ok", false));
  EXPECT_TRUE(R.find("result")->boolOr("valid", false));
  EXPECT_GT(R.find("result")->intOr("runs_executed", 0), 0);
}

TEST(ServeServer, FuzzReplayMethodEvaluatesEntry) {
  Server S({.Workers = 1});
  std::string Entry = "! ipcp-fuzz corpus\n! origin-seed: 1\n";
  Entry += SampleProgram;
  JsonValue R = parsedOk(
      S.handle("{\"id\":\"f\",\"method\":\"fuzz-replay\",\"params\":{"
               "\"entry\":" +
               JsonValue(Entry).dump() + "}}"));
  ASSERT_TRUE(R.boolOr("ok", false));
  EXPECT_FALSE(R.find("result")->boolOr("failed", true));
  EXPECT_GT(R.find("result")->intOr("feature_bits", 0), 0);
}

TEST(ServeServer, FuzzReplayRejectsMangledEntry) {
  // A truncated/garbled corpus header must come back as a structured
  // analysis-error, not be silently replayed (or worse, crash).
  Server S({.Workers = 1});
  std::string Entry = "! ipcp-fuzz corpus\n! origin-seed: 1x\n";
  Entry += SampleProgram;
  JsonValue R = parsedOk(
      S.handle("{\"id\":\"g\",\"method\":\"fuzz-replay\",\"params\":{"
               "\"entry\":" +
               JsonValue(Entry).dump() + "}}"));
  EXPECT_EQ(errorKind(R), "analysis-error");
  const JsonValue *Err = R.find("error");
  ASSERT_NE(Err, nullptr);
  EXPECT_NE(Err->strOr("message", "").find("garbled origin-seed"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

TEST(ServeTransport, StreamPumpAnswersAndDrains) {
  Server S({.Workers = 2});
  std::istringstream In(analyzeRequest("s1", SampleProgram) + "\n" +
                        analyzeRequest("s2", SampleProgram) + "\n" +
                        "{\"id\":\"down\",\"method\":\"shutdown\"}\n");
  std::ostringstream Out;
  serveStream(S, In, Out);

  size_t Count = 0;
  std::istringstream Lines(Out.str());
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++Count;
    parsedOk(Line);
  }
  EXPECT_EQ(Count, 3u);
}

TEST(ServeTransport, TcpRoundTrip) {
  Server S({.Workers = 2});
  TcpListener Listener;
  std::string Error;
  if (!Listener.listen(0, Error))
    GTEST_SKIP() << "cannot bind a loopback socket here: " << Error;
  std::thread Accept([&] { Listener.run(S); });

  ServeClient Client;
  ASSERT_TRUE(Client.connect("127.0.0.1:" + std::to_string(Listener.port()),
                             Error))
      << Error;
  std::string Reply;
  ASSERT_TRUE(Client.call(analyzeRequest("t1", SampleProgram), Reply, Error))
      << Error;
  EXPECT_TRUE(parsedOk(Reply).boolOr("ok", false));
  // Same connection, repeat request: served from the reply cache.
  ASSERT_TRUE(Client.call(analyzeRequest("t2", SampleProgram), Reply, Error))
      << Error;
  EXPECT_TRUE(parsedOk(Reply).find("result")->boolOr("cached", false));

  Client.close();
  Listener.stop();
  Accept.join();
  S.shutdown();
}

//===----------------------------------------------------------------------===//
// Differential: --server-url output is byte-identical to local mode
//===----------------------------------------------------------------------===//

#ifdef IPCP_DRIVER_PATH
namespace {

bool runCommand(const std::string &Cmd, std::string &Out) {
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  return pclose(P) == 0;
}

} // namespace

TEST(ServeDifferential, DriverServedOutputMatchesLocal) {
  Server S({.Workers = 2});
  TcpListener Listener;
  std::string Error;
  if (!Listener.listen(0, Error))
    GTEST_SKIP() << "cannot bind a loopback socket here: " << Error;
  std::thread Accept([&] { Listener.run(S); });
  std::string Url = "127.0.0.1:" + std::to_string(Listener.port());

  const std::string Driver = IPCP_DRIVER_PATH;
  for (const char *Flags :
       {"--suite=ocean", "--suite=ocean --stats", "--suite=trfd --quiet",
        "--suite=mdg --jf=pass --no-rjf", "--suite=qcd --emit-source",
        "--suite=linpackd --complete"}) {
    std::string Local, Served;
    ASSERT_TRUE(runCommand(Driver + " " + Flags + " 2>/dev/null", Local))
        << Flags;
    ASSERT_TRUE(runCommand(Driver + " " + Flags + " --server-url=" + Url +
                               " 2>/dev/null",
                           Served))
        << Flags;
    EXPECT_EQ(Local, Served) << "output diverged for: " << Flags;
  }

  Listener.stop();
  Accept.join();
  S.shutdown();
}
#endif // IPCP_DRIVER_PATH
