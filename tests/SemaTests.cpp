//===- tests/SemaTests.cpp - lang/Sema unit tests -------------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(Sema, ResolvesGlobalsFormalsLocals) {
  FullAnalysis A = analyze(R"(global g
proc main()
  integer l
  g = 1
  l = g
  call f(l)
end
proc f(x)
  print x + g
end
)");
  SymbolId G = A.symbol("g");
  EXPECT_EQ(A.Symbols.symbol(G).Kind, SymbolKind::Global);
  SymbolId X = A.symbolIn("f", "x");
  EXPECT_EQ(A.Symbols.symbol(X).Kind, SymbolKind::Formal);
  EXPECT_EQ(A.Symbols.symbol(X).Owner, A.proc("f"));
  EXPECT_EQ(A.Symbols.symbol(X).FormalIndex, 0u);
  SymbolId L = A.symbolIn("main", "l");
  EXPECT_EQ(A.Symbols.symbol(L).Kind, SymbolKind::Local);
}

TEST(Sema, FormalIndicesFollowParameterOrder) {
  FullAnalysis A = analyze(
      "proc main()\n  call f(1, 2, 3)\nend\nproc f(a, b, c)\nend\n");
  const auto &Formals = A.Symbols.formals(A.proc("f"));
  ASSERT_EQ(Formals.size(), 3u);
  EXPECT_EQ(A.Symbols.symbol(Formals[0]).Name, "a");
  EXPECT_EQ(A.Symbols.symbol(Formals[1]).Name, "b");
  EXPECT_EQ(A.Symbols.symbol(Formals[2]).Name, "c");
  EXPECT_EQ(A.Symbols.symbol(Formals[2]).FormalIndex, 2u);
}

TEST(Sema, InterproceduralParamsAreFormalsThenGlobals) {
  FullAnalysis A = analyze("global g1, g2\nproc main()\n  call f(1)\nend\n"
                           "proc f(x)\nend\n");
  auto Params = A.Symbols.interproceduralParams(A.proc("f"));
  ASSERT_EQ(Params.size(), 3u);
  EXPECT_EQ(A.Symbols.symbol(Params[0]).Name, "x");
  EXPECT_EQ(A.Symbols.symbol(Params[1]).Name, "g1");
  EXPECT_EQ(A.Symbols.symbol(Params[2]).Name, "g2");
}

TEST(Sema, GlobalInitializerRecorded) {
  FullAnalysis A = analyze("global n = 7\nproc main()\n  print n\nend\n");
  EXPECT_EQ(A.Symbols.symbol(A.symbol("n")).GlobalInit, 7);
}

TEST(Sema, ErrorUndeclaredVariable) {
  std::string Diags = diagnose("proc main()\n  x = 1\nend\n");
  EXPECT_NE(Diags.find("use of undeclared name 'x'"), std::string::npos);
}

TEST(Sema, ErrorDuplicateGlobal) {
  std::string Diags =
      diagnose("global a\nglobal a\nproc main()\nend\n");
  EXPECT_NE(Diags.find("duplicate global"), std::string::npos);
}

TEST(Sema, ErrorDuplicateLocal) {
  std::string Diags =
      diagnose("proc main()\n  integer a, a\nend\n");
  EXPECT_NE(Diags.find("duplicate declaration"), std::string::npos);
}

TEST(Sema, ErrorFormalLocalClash) {
  std::string Diags =
      diagnose("proc main()\n  call f(1)\nend\nproc f(x)\n  integer "
               "x\nend\n");
  EXPECT_NE(Diags.find("duplicate declaration"), std::string::npos);
}

TEST(Sema, ErrorShadowingGlobal) {
  std::string Diags =
      diagnose("global n\nproc main()\n  integer n\nend\n");
  EXPECT_NE(Diags.find("shadows a global"), std::string::npos);
}

TEST(Sema, ErrorDuplicateProcedure) {
  std::string Diags =
      diagnose("proc main()\nend\nproc f()\nend\nproc f()\nend\n");
  EXPECT_NE(Diags.find("duplicate procedure"), std::string::npos);
}

TEST(Sema, ErrorUnknownCallee) {
  std::string Diags = diagnose("proc main()\n  call nope()\nend\n");
  EXPECT_NE(Diags.find("unknown procedure"), std::string::npos);
}

TEST(Sema, ErrorArityMismatch) {
  std::string Diags = diagnose(
      "proc main()\n  call f(1)\nend\nproc f(a, b)\nend\n");
  EXPECT_NE(Diags.find("passes 1 arguments; expected 2"),
            std::string::npos);
}

TEST(Sema, ErrorScalarSubscripted) {
  std::string Diags = diagnose(
      "proc main()\n  integer x\n  x = 1\n  print x(2)\nend\n");
  EXPECT_NE(Diags.find("cannot subscript"), std::string::npos);
}

TEST(Sema, ErrorArrayWithoutSubscript) {
  std::string Diags =
      diagnose("array a(4)\nproc main()\n  print a\nend\n");
  EXPECT_NE(Diags.find("subscript required"), std::string::npos);
}

TEST(Sema, ErrorMissingMain) {
  std::string Diags = diagnose("proc helper()\nend\n");
  EXPECT_NE(Diags.find("no 'main'"), std::string::npos);
}

TEST(Sema, ErrorMainWithParameters) {
  std::string Diags = diagnose("proc main(x)\nend\n");
  EXPECT_NE(Diags.find("must take no parameters"), std::string::npos);
}

TEST(Sema, ErrorNonPositiveArraySize) {
  std::string Diags =
      diagnose("array a(0)\nproc main()\n  a(1) = 2\nend\n");
  EXPECT_NE(Diags.find("array size must be positive"), std::string::npos);
}

TEST(Sema, LocalsOfDifferentProcsDoNotClash) {
  FullAnalysis A = analyze("proc main()\n  integer t\n  t = 1\n  call "
                           "f()\nend\nproc f()\n  integer t\n  t = "
                           "2\nend\n");
  SymbolId TMain = A.symbolIn("main", "t");
  SymbolId TF = A.symbolIn("f", "t");
  EXPECT_NE(TMain, TF);
}
