//===- tests/DeadCodeElimTests.cpp - analysis/DeadCodeElim tests ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeElim.h"

#include "lang/AstPrinter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Finds the first statement of kind \p K in \p Stmts (recursively).
const Stmt *findStmt(const std::vector<Stmt *> &Stmts, StmtKind K) {
  for (const Stmt *S : Stmts) {
    if (S->kind() == K)
      return S;
    if (const auto *I = dyn_cast<IfStmt>(S)) {
      if (const Stmt *Found = findStmt(I->thenBody(), K))
        return Found;
      if (const Stmt *Found = findStmt(I->elseBody(), K))
        return Found;
    } else if (const auto *W = dyn_cast<WhileStmt>(S)) {
      if (const Stmt *Found = findStmt(W->body(), K))
        return Found;
    } else if (const auto *D = dyn_cast<DoLoopStmt>(S)) {
      if (const Stmt *Found = findStmt(D->body(), K))
        return Found;
    }
  }
  return nullptr;
}

std::string printed(AstContext &Ctx) {
  AstPrinter Printer;
  return Printer.programToString(Ctx.program());
}

} // namespace

TEST(DeadCodeElim, FoldsIfToThenArm) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 1
  if (x == 1) then
    print 10
  else
    print 20
  end if
end
)");
  const Stmt *If = findStmt(Ctx->program().Procs[0]->Body, StmtKind::If);
  DeadCodeElim::Decisions D{{If->id(), true}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 1u);
  std::string Out = printed(*Ctx);
  EXPECT_NE(Out.find("print 10"), std::string::npos);
  EXPECT_EQ(Out.find("print 20"), std::string::npos);
  EXPECT_EQ(Out.find("if ("), std::string::npos);
}

TEST(DeadCodeElim, FoldsIfToElseArm) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 2
  if (x == 1) then
    print 10
  else
    print 20
  end if
end
)");
  const Stmt *If = findStmt(Ctx->program().Procs[0]->Body, StmtKind::If);
  DeadCodeElim::Decisions D{{If->id(), false}};
  DeadCodeElim::run(*Ctx, D);
  std::string Out = printed(*Ctx);
  EXPECT_EQ(Out.find("print 10"), std::string::npos);
  EXPECT_NE(Out.find("print 20"), std::string::npos);
}

TEST(DeadCodeElim, FalseIfWithoutElseVanishes) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 2
  if (x == 1) then
    print 10
  end if
  print 99
end
)");
  const Stmt *If = findStmt(Ctx->program().Procs[0]->Body, StmtKind::If);
  DeadCodeElim::Decisions D{{If->id(), false}};
  DeadCodeElim::run(*Ctx, D);
  std::string Out = printed(*Ctx);
  EXPECT_EQ(Out.find("print 10"), std::string::npos);
  EXPECT_NE(Out.find("print 99"), std::string::npos);
}

TEST(DeadCodeElim, RemovesFalseWhile) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 0
  while (x > 0)
    print 1
  end while
  print 2
end
)");
  const Stmt *W =
      findStmt(Ctx->program().Procs[0]->Body, StmtKind::While);
  DeadCodeElim::Decisions D{{W->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 1u);
  std::string Out = printed(*Ctx);
  EXPECT_EQ(Out.find("while"), std::string::npos);
  EXPECT_NE(Out.find("print 2"), std::string::npos);
}

TEST(DeadCodeElim, KeepsTrueWhile) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 1
  while (x > 0)
    x = x - 1
  end while
end
)");
  const Stmt *W =
      findStmt(Ctx->program().Procs[0]->Body, StmtKind::While);
  DeadCodeElim::Decisions D{{W->id(), true}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 0u);
  EXPECT_NE(printed(*Ctx).find("while"), std::string::npos);
}

TEST(DeadCodeElim, ZeroTripDoKeepsInduction) {
  auto Ctx = parseOk(R"(proc main()
  integer i
  do i = 5, 1
    print i
  end do
  print i
end
)");
  const Stmt *Loop =
      findStmt(Ctx->program().Procs[0]->Body, StmtKind::DoLoop);
  DeadCodeElim::Decisions D{{Loop->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 1u);
  std::string Out = printed(*Ctx);
  EXPECT_EQ(Out.find("do i"), std::string::npos);
  // The induction variable still receives its initial value.
  EXPECT_NE(Out.find("i = 5"), std::string::npos);
}

TEST(DeadCodeElim, ZeroTripDoFoldClonesNodes) {
  // Regression: the fold used to reuse the loop's var and lo nodes in
  // the replacement assignment, aliasing the live tree with the
  // detached DoLoopStmt. The nodes must be fresh clones that keep
  // their resolved symbols (complete propagation re-lowers the folded
  // AST without re-running Sema).
  auto A = analyze(R"(proc main()
  integer i, k
  k = 3
  do i = k + 2, 1
    print i
  end do
  print i
end
)");
  auto &Ctx = *A.Ctx;
  const auto *Loop = cast<DoLoopStmt>(
      findStmt(Ctx.program().Procs[0]->Body, StmtKind::DoLoop));
  const VarRefExpr *LoopVar = Loop->var();
  const Expr *LoopLo = Loop->lo();
  ASSERT_NE(LoopVar->symbol(), UINT32_MAX) << "Sema must have resolved";

  DeadCodeElim::Decisions D{{Loop->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(Ctx, D), 1u);

  const auto *Assign = cast<AssignStmt>(
      findStmt(Ctx.program().Procs[0]->Body, StmtKind::Assign));
  ASSERT_NE(Assign, nullptr);
  // The first assign in the body is 'k = 3'; find the folded one by
  // its target symbol.
  const AssignStmt *FoldedAssign = nullptr;
  for (const Stmt *S : Ctx.program().Procs[0]->Body)
    if (const auto *AS = dyn_cast<AssignStmt>(S))
      if (const auto *T = dyn_cast<VarRefExpr>(AS->target()))
        if (T->symbol() == LoopVar->symbol())
          FoldedAssign = AS;
  ASSERT_NE(FoldedAssign, nullptr);
  EXPECT_NE(FoldedAssign->target(), static_cast<const Expr *>(LoopVar))
      << "target must be a clone, not the loop's own var node";
  EXPECT_NE(FoldedAssign->value(), LoopLo)
      << "value must be a clone, not the loop's own lo node";
  // The clones carry the resolved symbols, and fresh ids.
  EXPECT_EQ(cast<VarRefExpr>(FoldedAssign->target())->symbol(),
            LoopVar->symbol());
  EXPECT_NE(FoldedAssign->target()->id(), LoopVar->id());

  // The folded AST must survive re-printing and a second DCE pass —
  // the operations complete propagation performs each round.
  std::string Out = printed(Ctx);
  EXPECT_EQ(Out.find("do i"), std::string::npos);
  parseOk(Out);
  DeadCodeElim::Decisions None;
  EXPECT_EQ(DeadCodeElim::run(Ctx, None), 0u);
  EXPECT_EQ(printed(Ctx), Out);
}

TEST(DeadCodeElim, ZeroTripDoFoldBlockedByTrappingStep) {
  // The trip test's lo/hi were proven constant by the analysis, but
  // the step expression is outside that proof: it is evaluated once
  // at loop entry and may trap, so a potentially trapping step blocks
  // the fold.
  auto Ctx = parseOk(R"(proc main()
  integer i, z
  do i = 10, 2, 1 / z
    print i
  end do
  print i
end
)");
  const Stmt *Loop =
      findStmt(Ctx->program().Procs[0]->Body, StmtKind::DoLoop);
  DeadCodeElim::Decisions D{{Loop->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 0u);
  EXPECT_NE(printed(*Ctx).find("do i"), std::string::npos)
      << "loop with trapping step must be retained";
}

TEST(DeadCodeElim, ZeroTripDoFoldAllowedForSafeStep) {
  // A step built only from literals, variables, +, -, * cannot trap;
  // the fold proceeds.
  auto Ctx = parseOk(R"(proc main()
  integer i, s
  do i = 10, 2, s + 1
    print i
  end do
  print i
end
)");
  const Stmt *Loop =
      findStmt(Ctx->program().Procs[0]->Body, StmtKind::DoLoop);
  DeadCodeElim::Decisions D{{Loop->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 1u);
  EXPECT_EQ(printed(*Ctx).find("do i"), std::string::npos);
}

TEST(DeadCodeElim, FoldsNestedBranches) {
  auto Ctx = parseOk(R"(proc main()
  integer a, b
  a = 1
  b = 0
  if (a == 1) then
    if (b == 1) then
      print 1
    else
      print 2
    end if
  end if
end
)");
  const auto &Body = Ctx->program().Procs[0]->Body;
  const Stmt *Outer = findStmt(Body, StmtKind::If);
  const auto *OuterIf = cast<IfStmt>(Outer);
  const Stmt *Inner = findStmt(OuterIf->thenBody(), StmtKind::If);
  DeadCodeElim::Decisions D{{Outer->id(), true}, {Inner->id(), false}};
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 2u);
  std::string Out = printed(*Ctx);
  EXPECT_EQ(Out.find("print 1"), std::string::npos);
  EXPECT_NE(Out.find("print 2"), std::string::npos);
  EXPECT_EQ(Out.find("if"), std::string::npos);
}

TEST(DeadCodeElim, UntouchedWithoutDecisions) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  read x
  if (x == 1) then
    print 1
  end if
end
)");
  std::string Before = printed(*Ctx);
  DeadCodeElim::Decisions D;
  EXPECT_EQ(DeadCodeElim::run(*Ctx, D), 0u);
  EXPECT_EQ(printed(*Ctx), Before);
}

TEST(DeadCodeElim, ResultStillParses) {
  auto Ctx = parseOk(R"(proc main()
  integer x
  x = 1
  if (x == 1) then
    while (x > 5)
      print 1
    end while
  else
    print 2
  end if
end
)");
  const Stmt *If = findStmt(Ctx->program().Procs[0]->Body, StmtKind::If);
  const Stmt *W = findStmt(cast<IfStmt>(If)->thenBody(), StmtKind::While);
  DeadCodeElim::Decisions D{{If->id(), true}, {W->id(), false}};
  DeadCodeElim::run(*Ctx, D);
  parseOk(printed(*Ctx)); // Must remain valid MiniFort.
}
