//===- tests/EdgeCaseTests.cpp - Adversarial corner cases -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Corners the paper's prose implies but its tables cannot show: aliasing
// through parameter binding, division hazards, deep recursion, and the
// soundness boundaries of the substitution rules.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

PipelineResult run(const std::string &Source,
                   PipelineOptions Opts = PipelineOptions()) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

std::string constantsOf(const PipelineResult &R, const std::string &Proc) {
  for (size_t P = 0; P != R.ProcNames.size(); ++P) {
    if (R.ProcNames[P] != Proc)
      continue;
    std::string Out;
    for (const auto &[Name, Value] : R.Constants[P])
      Out += Name + "=" + std::to_string(Value) + ";";
    return Out;
  }
  return "<no such proc>";
}

} // namespace

TEST(EdgeCase, SameVariablePassedTwiceIsConservative) {
  // f(a, b) with both bound to v: writing through a also changes b.
  // The analyzer must not claim v constant after the call.
  PipelineResult R = run(R"(proc main()
  integer v
  v = 1
  call f(v, v)
  print v
end
proc f(a, b)
  a = b + 10
end
)");
  // Nothing is substituted: v's uses in main are by-reference actuals of
  // a call that may modify them, print v follows an ambiguous kill, and
  // inside f both formals are a modified alias pair (writing a changes
  // b), so the alias analysis treats their values as unknowable — even
  // the read of b that happens to precede the store, since the default
  // aliasing rule is flow-insensitive (the flow-sensitive tier recovers
  // exactly that read; see the twin test below).
  EXPECT_EQ(R.SubstitutedConstants, 0u);
  EXPECT_GE(R.AliasPairs, 1u);
  EXPECT_GE(R.AliasUnstableSymbols, 2u);
}

TEST(EdgeCase, SameVariablePassedTwiceRecoveredFlowSensitively) {
  // The same program under the flow-sensitive aliasing tier: b's read in
  // "a = b + 10" precedes the only store through the pair, so the
  // analysis proves it still holds the bound value and substitutes it.
  // Everything at or after the store stays conservative — v's uses in
  // main remain untouched.
  PipelineOptions Fsa;
  Fsa.FlowSensitiveAlias = true;
  PipelineResult R = run(R"(proc main()
  integer v
  v = 1
  call f(v, v)
  print v
end
proc f(a, b)
  a = b + 10
end
)",
                         Fsa);
  EXPECT_EQ(R.SubstitutedConstants, 1u);
  EXPECT_EQ(constantsOf(R, "f"), "a=1;b=1;");
  EXPECT_GE(R.AliasPointsRefined, 1u);
}

TEST(EdgeCase, GlobalPassedByReferenceIsConservative) {
  PipelineResult R = run(R"(global g
proc main()
  g = 5
  call f(g)
  print g
end
proc f(x)
  x = x + 1
end
)");
  // After the call, g could be 6 (through x) — the analyzer must not
  // claim g=5 nor g=6 at the print (our RJF key logic treats the
  // global-also-passed case as unknown).
  std::string Main = constantsOf(R, "main");
  (void)Main;
  PipelineOptions Emit;
  Emit.EmitTransformedSource = true;
  PipelineResult T = run(R"(global g
proc main()
  g = 5
  call f(g)
  print g
end
proc f(x)
  x = x + 1
end
)",
                         Emit);
  EXPECT_EQ(T.TransformedSource.find("print 5"), std::string::npos);
  EXPECT_EQ(T.TransformedSource.find("print 6"), std::string::npos);
}

TEST(EdgeCase, InterproceduralDivisionByZeroIsBottom) {
  PipelineResult R = run(R"(proc main()
  call f(0)
end
proc f(d)
  print 100 / d
end
)");
  // d=0 propagates, but 100/0 must not fold to anything.
  EXPECT_EQ(constantsOf(R, "f"), "d=0;");
  PipelineOptions Emit;
  Emit.EmitTransformedSource = true;
  PipelineResult T = run(R"(proc main()
  call f(0)
end
proc f(d)
  print 100 / d
end
)",
                         Emit);
  EXPECT_NE(T.TransformedSource.find("100 / 0"), std::string::npos);
}

TEST(EdgeCase, PolynomialDivisionByZeroJumpFunction) {
  // The jump function 10 / (x - 2) evaluated at x=2 must yield bottom,
  // not crash or claim a constant.
  PipelineResult R = run(R"(proc main()
  call a(2)
end
proc a(x)
  call b(10 / (x - 2))
end
proc b(y)
  print y
end
)");
  EXPECT_EQ(constantsOf(R, "b"), "");
}

TEST(EdgeCase, DeepCallChainPropagates) {
  std::string Source = "proc main()\n  call p0(1)\nend\n";
  const int Depth = 60;
  for (int I = 0; I < Depth; ++I) {
    Source += "proc p" + std::to_string(I) + "(x)\n";
    if (I + 1 < Depth)
      Source += "  call p" + std::to_string(I + 1) + "(x + 1)\n";
    else
      Source += "  print x\n";
    Source += "end\n";
  }
  PipelineResult R = run(Source);
  EXPECT_EQ(constantsOf(R, "p" + std::to_string(Depth - 1)),
            "x=" + std::to_string(Depth) + ";");
}

TEST(EdgeCase, WideFanoutMeets) {
  // 40 call sites agreeing on one argument, disagreeing on another.
  std::string Source = "proc main()\n";
  for (int I = 0; I < 40; ++I)
    Source += "  call f(7, " + std::to_string(I) + ")\n";
  Source += "end\nproc f(same, diff)\n  print same + diff\nend\n";
  PipelineResult R = run(Source);
  EXPECT_EQ(constantsOf(R, "f"), "same=7;");
}

TEST(EdgeCase, MutualRecursionWithInvariant) {
  PipelineResult R = run(R"(proc main()
  call even(8, 2)
end
proc even(n, step)
  if (n > 0) then
    call odd(n - step, step)
  end if
end
proc odd(n, step)
  if (n > 0) then
    call even(n - step, step)
  end if
end
)");
  EXPECT_EQ(constantsOf(R, "even"), "step=2;");
  EXPECT_EQ(constantsOf(R, "odd"), "step=2;");
}

TEST(EdgeCase, SelfAssignmentKeepsPassThrough) {
  // x = x is the identity: the pass-through kind must still see x.
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::PassThrough;
  PipelineResult R = run(R"(proc main()
  call a(5)
end
proc a(x)
  x = x
  call b(x)
end
proc b(y)
  print y
end
)",
                         Opts);
  EXPECT_EQ(constantsOf(R, "b"), "y=5;");
}

TEST(EdgeCase, AlgebraicIdentityKeepsPassThrough) {
  // x + 0 and x * 1 must survive the pass-through classification (the
  // value numbering folds them to the entry parameter).
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::PassThrough;
  PipelineResult R = run(R"(proc main()
  call a(5)
end
proc a(x)
  call b(x + 0)
  call c(x * 1)
end
proc b(y)
  print y
end
proc c(z)
  print z
end
)",
                         Opts);
  EXPECT_EQ(constantsOf(R, "b"), "y=5;");
  EXPECT_EQ(constantsOf(R, "c"), "z=5;");
}

TEST(EdgeCase, WhileTrueBodyStillAnalyzed) {
  PipelineResult R = run(R"(proc main()
  integer x
  x = 3
  while (1 > 0)
    call f(x)
  end while
end
proc f(p)
  print p
end
)");
  EXPECT_EQ(constantsOf(R, "f"), "p=3;");
}

TEST(EdgeCase, NegativeStepLoopBoundsCount) {
  PipelineResult R = run(R"(proc main()
  integer i, n
  n = 10
  do i = n, 1, -2
    print i
  end do
end
)");
  // The 'n' in the lower bound is one substitutable use.
  EXPECT_EQ(R.SubstitutedConstants, 1u);
}

TEST(EdgeCase, KnownButIrrelevantGlobalsAreReported) {
  PipelineResult R = run(R"(global used, unused
proc main()
  used = 1
  unused = 2
  call f()
end
proc f()
  print used
end
)");
  // f's CONSTANTS contains both globals, but 'unused' is never
  // referenced there: exactly one known-but-irrelevant entry.
  EXPECT_EQ(constantsOf(R, "f"), "used=1;unused=2;");
  EXPECT_EQ(R.KnownButIrrelevant, 1u);
}

TEST(EdgeCase, ZeroTripCountLoopKeepsInitialValue) {
  PipelineOptions Emit;
  Emit.EmitTransformedSource = true;
  PipelineResult R = run(R"(proc main()
  integer i
  do i = 9, 1
    read i
  end do
  call f(i)
end
proc f(p)
  print p
end
)",
                         Emit);
  // The loop never runs; i = 9 reaches the call.
  EXPECT_NE(R.TransformedSource.find("call f(9)"), std::string::npos);
}

TEST(EdgeCase, ModuloAndDivisionFoldInterprocedurally) {
  PipelineResult R = run(R"(proc main()
  call f(17, 5)
end
proc f(a, b)
  call g(a / b, a % b)
end
proc g(q, r)
  print q * 10 + r
end
)");
  EXPECT_EQ(constantsOf(R, "g"), "q=3;r=2;");
}
