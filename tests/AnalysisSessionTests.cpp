//===- tests/AnalysisSessionTests.cpp - ipcp/AnalysisSession tests --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental-session safety net: a warm (cached) analysis must be
/// byte-identical to a cold one for every configuration, on every suite
/// program and a sweep of random ones; DCE's dirty-set must re-lower
/// only the procedures it mutated; the solver memo must actually fire;
/// and the suite runner must create exactly one thread pool however its
/// two fan-out levels are configured.
///
//===----------------------------------------------------------------------===//

#include "ipcp/AnalysisSession.h"

#include "analysis/DeadCodeElim.h"
#include "ipcp/Pipeline.h"
#include "ipcp/Solver.h"
#include "ipcp/Substitution.h"
#include "lang/AstClone.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Serializes everything a PipelineResult reports except timings and
/// AST-id-keyed data. Complete-propagation cells analyze a resolved
/// clone in warm mode, whose expressions carry fresh ids, so the
/// fingerprint uses the sorted substituted *values* plus the transformed
/// source (which is id-free) rather than the Substitutions keys.
std::string fingerprint(const PipelineResult &R) {
  std::ostringstream Out;
  Out << R.Ok << '|' << R.Error << '|' << R.SubstitutedConstants << '|'
      << R.ConstantPrints << '|' << R.KnownButIrrelevant << '|'
      << R.DceRounds << '|' << R.FoldedBranches << '|' << R.AliasPairs
      << '|' << R.AliasUnstableSymbols << '\n';
  for (unsigned N : R.PerProcSubstituted)
    Out << N << ' ';
  Out << '\n';
  for (const std::string &N : R.ProcNames)
    Out << N << ' ';
  Out << '\n';
  for (const auto &Proc : R.Constants) {
    for (const auto &[Name, Value] : Proc)
      Out << Name << '=' << Value << ' ';
    Out << ';';
  }
  Out << '\n';
  for (const std::string &N : R.NeverCalled)
    Out << N << ' ';
  Out << '\n';
  const JumpFunctionStats &S = R.JfStats;
  Out << S.NumForward << ' ' << S.NumForwardConst << ' '
      << S.NumForwardPassThrough << ' ' << S.NumForwardPoly << ' '
      << S.NumForwardBottom << ' ' << S.TotalPolySupport << ' '
      << S.MaxPolySupport << ' ' << S.NumReturn << ' ' << S.NumReturnConst
      << ' ' << S.NumReturnPoly << ' ' << S.NumReturnBottom << '\n';
  // SolverMemoHits/Misses are deliberately excluded alongside Timings:
  // they measure cache effectiveness, not analysis results, and a warm
  // session's shared value-context memo legitimately replays more than a
  // cold run evaluates fresh.
  Out << R.SolverProcVisits << ' ' << R.SolverJfEvaluations << ' '
      << R.SolverCellLowerings << '\n';
  std::vector<int64_t> Values;
  for (const auto &[Id, Value] : R.Substitutions)
    Values.push_back(Value);
  std::sort(Values.begin(), Values.end());
  for (int64_t V : Values)
    Out << V << ' ';
  Out << '\n' << R.TransformedSource;
  return Out.str();
}

/// One program's shared frontend + session, mirroring the suite runner's
/// Shared mode.
struct WarmProgram {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::unique_ptr<AnalysisSession> Session;
};

WarmProgram warmUp(const std::string &Source) {
  WarmProgram W;
  DiagnosticEngine Diags;
  W.Ctx = parseProgram(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  W.Symbols = Sema::run(*W.Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  W.Session = std::make_unique<AnalysisSession>(*W.Ctx, W.Symbols);
  return W;
}

PipelineResult warmRun(WarmProgram &W, PipelineOptions Opts) {
  if (Opts.CompletePropagation) {
    auto Clone = cloneProgramResolved(*W.Ctx);
    AnalysisSession Private(*Clone, W.Symbols);
    return runPipelineOnSession(Private, Opts);
  }
  return runPipelineOnSession(*W.Session, Opts);
}

/// Runs every config cold (fresh parse + fresh session per run) and warm
/// (one shared session, configs in sequence so later ones hit the
/// caches) and compares fingerprints.
void expectColdEqualsWarm(const std::string &Source,
                          const std::string &Label) {
  WarmProgram W = warmUp(Source);
  for (const SuiteConfig &C : allConfigs()) {
    PipelineOptions Opts = C.Opts;
    Opts.EmitTransformedSource = true;
    PipelineResult Cold = runPipeline(Source, Opts);
    PipelineResult Warm = warmRun(W, Opts);
    EXPECT_EQ(fingerprint(Cold), fingerprint(Warm))
        << Label << " diverged under config " << C.Name;
  }
}

} // namespace

TEST(AnalysisSession, ColdVsWarmFingerprintsOnSuitePrograms) {
  for (const WorkloadProgram &P : benchmarkSuite())
    expectColdEqualsWarm(P.Source, P.Name);
}

TEST(AnalysisSession, ColdVsWarmFingerprintsOnRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.AllowRecursion = Seed % 3 == 0; // Exercise the recursive-proc
                                         // stage-2 rebuild path too.
    expectColdEqualsWarm(generateRandomProgram(Spec),
                         "random seed " + std::to_string(Seed));
  }
}

TEST(AnalysisSession, DceDirtySetRelowersOnlyMutatedProcs) {
  // Only 'produce' contains a branch the seeded SCCP can fold (flag is
  // the constant 0); 'main', 'consume', and 'clean' must stay cached
  // across the invalidation.
  const char *Source = R"(proc main()
  call produce(0)
  call clean(3)
end
proc produce(flag)
  integer v
  v = 8
  if (flag == 1) then
    read v
  end if
  call consume(v)
end
proc consume(p)
  print p
end
proc clean(q)
  print q
end
)";
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ProcId Produce = *Ctx->program().findProc("produce");

  AnalysisSession Session(*Ctx, Symbols);
  const Module &M = Session.module();
  EXPECT_EQ(Session.stats().ProcsLowered, 4u);
  EXPECT_EQ(Session.stats().ProcsRelowered, 0u);

  const CallGraph &CG = Session.callGraph();
  const ModRefInfo *MRI = Session.modRef(true);
  const RefAliasInfo &Aliases = Session.refAlias(true);
  JumpFunctionOptions JfOpts;
  ProgramJumpFunctions Jfs = buildJumpFunctions(
      M, Symbols, CG, MRI, JfOpts, &Aliases, nullptr, &Session);
  SolveResult Solve = solveConstants(Symbols, CG, Jfs);
  SubstitutionResult Subs =
      countSubstitutions(M, Symbols, CG, &Solve, MRI, &Jfs, &Aliases,
                         nullptr, &Session);
  ASSERT_FALSE(Subs.Branches.empty());

  std::vector<ProcId> Dirty;
  unsigned Folded = DeadCodeElim::run(*Ctx, Subs.Branches, &Dirty);
  EXPECT_GE(Folded, 1u);
  EXPECT_EQ(Dirty, (std::vector<ProcId>{Produce}));

  Session.invalidate(Dirty);
  Session.module();
  EXPECT_EQ(Session.stats().ProcsLowered, 5u);
  EXPECT_EQ(Session.stats().ProcsRelowered, 1u);
}

TEST(AnalysisSession, SolverMemoHitsOnRevisits) {
  // Round-robin sweeps until a whole pass changes nothing, so its final
  // sweep revisits every procedure under an already-seen value context —
  // the memo must serve those replays, and the results must match the
  // worklist strategy exactly.
  const WorkloadProgram &W = benchmarkSuite().front();
  PipelineOptions RoundRobin;
  RoundRobin.Strategy = SolverStrategy::RoundRobin;
  PipelineResult R = runPipeline(W.Source, RoundRobin);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SolverMemoHits, 0u);
  EXPECT_GT(R.SolverMemoMisses, 0u);

  PipelineResult Base = runPipeline(W.Source, PipelineOptions());
  ASSERT_TRUE(Base.Ok) << Base.Error;
  EXPECT_EQ(R.SubstitutedConstants, Base.SubstitutedConstants);
  EXPECT_EQ(R.ConstantPrints, Base.ConstantPrints);
  EXPECT_EQ(R.SolverCellLowerings, Base.SolverCellLowerings);
}

TEST(AnalysisSession, CrossConfigReplayKeepsFingerprintsByteIdentical) {
  // Every config that runs on one session shares its value-context memo.
  // Sweeping all configs once warms the memo with contexts from *other*
  // configs' solves; sweeping again replays largely out of the memo.
  // Both sweeps must produce byte-identical fingerprints per config —
  // memoized contexts may short-circuit work, never change results.
  for (size_t PI : {size_t(0), benchmarkSuite().size() - 1}) {
    const WorkloadProgram &P = benchmarkSuite()[PI];
    WarmProgram W = warmUp(P.Source);
    std::vector<std::string> FirstSweep;
    for (const SuiteConfig &C : allConfigs()) {
      PipelineOptions Opts = C.Opts;
      Opts.EmitTransformedSource = true;
      FirstSweep.push_back(fingerprint(warmRun(W, Opts)));
    }
    uint64_t MissesAfterFirst = W.Session->solverMemo().misses();
    EXPECT_GT(MissesAfterFirst, 0u) << P.Name;

    size_t I = 0;
    for (const SuiteConfig &C : allConfigs()) {
      PipelineOptions Opts = C.Opts;
      Opts.EmitTransformedSource = true;
      EXPECT_EQ(FirstSweep[I++], fingerprint(warmRun(W, Opts)))
          << P.Name << " replay diverged under config " << C.Name;
    }
    // The replay sweep resolves previously-seen contexts from the memo:
    // hits must have grown, and no new contexts may have been admitted.
    EXPECT_GT(W.Session->solverMemo().hits(), 0u) << P.Name;
    EXPECT_EQ(W.Session->solverMemo().misses(), MissesAfterFirst) << P.Name;
  }
}

TEST(AnalysisSession, BatchFanoutCreatesExactlyOnePool) {
  // Jobs != 1 clamps per-cell threads to 1: the requested ThreadsPerRun=8
  // must NOT spawn nested pools under the batch pool.
  std::vector<WorkloadProgram> Programs(benchmarkSuite().begin(),
                                        benchmarkSuite().begin() + 2);
  std::vector<SuiteConfig> Configs = table3Configs();
  uint64_t Before = ThreadPool::poolsCreated();
  SuiteRunResult R = runSuite(Programs, Configs, /*Jobs=*/4,
                              /*ThreadsPerRun=*/8);
  EXPECT_EQ(ThreadPool::poolsCreated() - Before, 1u);
  for (const SuiteCell &Cell : R.Cells)
    EXPECT_TRUE(Cell.Ok);

  // Jobs == 1 with per-cell threads: one pool, shared by every cell.
  Before = ThreadPool::poolsCreated();
  runSuite(Programs, Configs, /*Jobs=*/1, /*ThreadsPerRun=*/4);
  EXPECT_EQ(ThreadPool::poolsCreated() - Before, 1u);
}

TEST(AnalysisSession, InjectedPoolSuppressesPoolCreation) {
  const WorkloadProgram &W = benchmarkSuite().front();
  PipelineOptions Serial;
  Serial.EmitTransformedSource = true;
  PipelineResult Base = runPipeline(W.Source, Serial);

  ThreadPool Shared(4);
  uint64_t Before = ThreadPool::poolsCreated();
  PipelineOptions Injected = Serial;
  Injected.Threads = 8; // Ignored: the injected pool wins.
  Injected.Pool = &Shared;
  PipelineResult R = runPipeline(W.Source, Injected);
  EXPECT_EQ(ThreadPool::poolsCreated() - Before, 0u);
  EXPECT_EQ(fingerprint(R), fingerprint(Base));
}

TEST(AnalysisSession, SharedSuitePlumbsTimingsAndCacheStats) {
  SuiteRunResult R = runSuite(benchmarkSuite(), allConfigs(), /*Jobs=*/1,
                              /*ThreadsPerRun=*/1, SuiteSharing::Shared);
  ASSERT_EQ(R.Cells.size(), R.NumPrograms * R.NumConfigs);
  for (const SuiteCell &Cell : R.Cells) {
    EXPECT_TRUE(Cell.Ok) << Cell.Program << '/' << Cell.Config;
    EXPECT_GT(Cell.Timings.TotalMs, 0.0)
        << Cell.Program << '/' << Cell.Config;
  }
  EXPECT_GT(R.FrontendMs, 0.0);
  // Four Table 2 kinds share each (UseMod, UseRjf, Gated) base, and both
  // stage 2 and the substitution pass read the cached SSA.
  EXPECT_GT(R.Cache.JfBasesReused, 0u);
  EXPECT_GT(R.Cache.SsaReused, 0u);
  EXPECT_GT(R.Cache.VnReused, 0u);
  EXPECT_EQ(R.Cache.ProcsRelowered, 0u); // Complete cells use clones.
}
