//===- tests/CfgTests.cpp - ir/CfgBuilder unit tests ----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/CfgBuilder.h"
#include "ir/IrPrinter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Counts instructions of \p Op in \p F.
unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      N += In.Op == Op;
  return N;
}

} // namespace

TEST(Cfg, StraightLineIsTwoBlocks) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  x = 1\n  print x\nend\n");
  const Function &F = A.function("main");
  // Entry block + exit block.
  EXPECT_EQ(F.numBlocks(), 2u);
  EXPECT_EQ(F.block(F.exitBlock()).Instrs.back().Op, Opcode::Ret);
}

TEST(Cfg, SingleExitBlock) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  if (x > 0) then
    return
  end if
  print x
end
)");
  const Function &F = A.function("main");
  unsigned Rets = countOps(F, Opcode::Ret);
  EXPECT_EQ(Rets, 1u);
}

TEST(Cfg, IfProducesDiamond) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 1
  if (x > 0) then
    x = 2
  else
    x = 3
  end if
  print x
end
)");
  const Function &F = A.function("main");
  EXPECT_EQ(countOps(F, Opcode::Branch), 1u);
  // entry, then, else, join, exit.
  EXPECT_EQ(F.numBlocks(), 5u);
}

TEST(Cfg, BranchHasTwoSuccessors) {
  FullAnalysis A = analyze("proc main()\n  integer x\n  x = 0\n  if (x) "
                           "then\n    x = 1\n  end if\nend\n");
  const Function &F = A.function("main");
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      if (In.Op == Opcode::Branch)
        EXPECT_EQ(F.block(B).Succs.size(), 2u);
}

TEST(Cfg, WhileProducesLoop) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 10
  while (x > 0)
    x = x - 1
  end while
end
)");
  const Function &F = A.function("main");
  // Some block must have a successor with a smaller id (the back edge).
  bool HasBackEdge = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (BlockId S : F.block(B).Succs)
      HasBackEdge |= S <= B;
  EXPECT_TRUE(HasBackEdge);
}

TEST(Cfg, DoLoopCapturesBounds) {
  FullAnalysis A = analyze(R"(proc main()
  integer i, n
  n = 10
  do i = 1, n
    n = 0
  end do
end
)");
  const Function &F = A.function("main");
  // The header comparison must read a temporary (captured bound), not
  // the variable n directly.
  bool FoundCapturedCompare = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      if (In.Op == Opcode::Binary && In.BinOp == BinaryOp::CmpLe)
        FoundCapturedCompare |= In.Src2.isTemp();
  EXPECT_TRUE(FoundCapturedCompare);
}

TEST(Cfg, NegativeConstStepComparesDownward) {
  FullAnalysis A = analyze("proc main()\n  integer i\n  do i = 10, 1, -1\n"
                           "  end do\nend\n");
  const Function &F = A.function("main");
  EXPECT_EQ(countOps(F, Opcode::Binary), 2u); // compare + increment
  bool FoundGe = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      if (In.Op == Opcode::Binary && In.BinOp == BinaryOp::CmpGe)
        FoundGe = true;
  EXPECT_TRUE(FoundGe);
}

TEST(Cfg, LiteralCallArgumentsStayConstOperands) {
  FullAnalysis A = analyze(
      "proc main()\n  call f(3, 1 + 2)\nend\nproc f(a, b)\nend\n");
  const Function &F = A.function("main");
  bool Checked = false;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      if (In.Op == Opcode::Call) {
        ASSERT_EQ(In.Args.size(), 2u);
        EXPECT_TRUE(In.Args[0].isConst()); // Literal stays literal.
        EXPECT_TRUE(In.Args[1].isTemp());  // Expression via temp.
        Checked = true;
      }
  EXPECT_TRUE(Checked);
}

TEST(Cfg, VariableUsesCarrySourceExprIds) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  x = 1\n  print x + 2\nend\n");
  const Function &F = A.function("main");
  unsigned TaggedUses = 0;
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      In.forEachUse([&](const Operand &Op) {
        if (Op.isVar() && Op.SourceExpr != 0)
          ++TaggedUses;
      });
  // Exactly one source-level use of x.
  EXPECT_EQ(TaggedUses, 1u);
}

TEST(Cfg, AssignmentTargetIsNotAUse) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  x = 5\nend\n");
  const Function &F = A.function("main");
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (const Instr &In : F.block(B).Instrs)
      if (In.Op == Opcode::Copy && In.Dst.isVar())
        EXPECT_EQ(In.Dst.SourceExpr, 0u);
}

TEST(Cfg, GlobalInitializersPrologueOnlyInMain) {
  FullAnalysis A = analyze("global n = 9\nproc main()\n  call f()\nend\n"
                           "proc f()\n  print n\nend\n");
  const Function &Main = A.function("main");
  const Instr &First = Main.block(0).Instrs.front();
  EXPECT_EQ(First.Op, Opcode::Copy);
  EXPECT_TRUE(First.Dst.isVar());
  EXPECT_TRUE(First.Src1.isConst());
  EXPECT_EQ(First.Src1.ConstValue, 9);

  const Function &F = A.function("f");
  EXPECT_EQ(countOps(F, Opcode::Copy), 0u);
}

TEST(Cfg, UnreachableCodeAfterReturnIsPruned) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  return\n  x = 1\n  print x\nend\n");
  const Function &F = A.function("main");
  // The x=1 / print x block is unreachable and removed: only the entry
  // (with the jump) and the exit remain.
  EXPECT_EQ(countOps(F, Opcode::Copy), 0u);
  EXPECT_EQ(countOps(F, Opcode::Print), 0u);
}

TEST(Cfg, ArrayLoadAndStore) {
  FullAnalysis A = analyze("array a(4)\nproc main()\n  integer i\n  i = "
                           "1\n  a(i) = a(i) + 1\nend\n");
  const Function &F = A.function("main");
  EXPECT_EQ(countOps(F, Opcode::Load), 1u);
  EXPECT_EQ(countOps(F, Opcode::Store), 1u);
}

TEST(Cfg, ReadAndPrintLower) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  read x\n  print x\nend\n");
  const Function &F = A.function("main");
  EXPECT_EQ(countOps(F, Opcode::Read), 1u);
  EXPECT_EQ(countOps(F, Opcode::Print), 1u);
}

TEST(Cfg, PredsMatchSuccs) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  x = 5
  while (x > 0)
    if (x % 2 == 0) then
      x = x / 2
    else
      x = x - 1
    end if
  end while
end
)");
  const Function &F = A.function("main");
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    for (BlockId S : F.block(B).Succs) {
      const auto &Preds = F.block(S).Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B), Preds.end())
          << "edge " << B << "->" << S << " missing from preds";
    }
    for (BlockId P : F.block(B).Preds) {
      const auto &Succs = F.block(P).Succs;
      EXPECT_NE(std::find(Succs.begin(), Succs.end(), B), Succs.end());
    }
  }
}

TEST(Cfg, PrinterMentionsEveryBlock) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  x = 1\n  if (x) then\n    print 1\n  "
      "end if\nend\n");
  const Function &F = A.function("main");
  std::string Out = functionToString(F, A.Symbols);
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    EXPECT_NE(Out.find("bb" + std::to_string(B) + ":"),
              std::string::npos);
}
