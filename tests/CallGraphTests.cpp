//===- tests/CallGraphTests.cpp - analysis/CallGraph unit tests -----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(CallGraph, EdgesPerCallSite) {
  FullAnalysis A = analyze(R"(proc main()
  call f()
  call f()
  call g()
end
proc f()
  call g()
end
proc g()
end
)");
  EXPECT_EQ(A.CG->numCallSites(), 4u);
  EXPECT_EQ(A.CG->callSitesIn(A.proc("main")).size(), 3u);
  EXPECT_EQ(A.CG->callSitesOf(A.proc("f")).size(), 2u);
  EXPECT_EQ(A.CG->callSitesOf(A.proc("g")).size(), 2u);
}

TEST(CallGraph, CallSitesAnchorRealInstructions) {
  FullAnalysis A = analyze("proc main()\n  call f()\nend\nproc f()\nend\n");
  for (const CallSite &S : A.CG->callSitesIn(A.proc("main"))) {
    const Instr &In =
        A.M.function(S.Caller).block(S.Block).Instrs[S.InstrIdx];
    EXPECT_EQ(In.Op, Opcode::Call);
    EXPECT_EQ(In.Callee, S.Callee);
  }
}

TEST(CallGraph, Reachability) {
  FullAnalysis A = analyze(R"(proc main()
  call used()
end
proc used()
end
proc dead()
  call deadtoo()
end
proc deadtoo()
end
)");
  EXPECT_TRUE(A.CG->isReachable(A.proc("main")));
  EXPECT_TRUE(A.CG->isReachable(A.proc("used")));
  EXPECT_FALSE(A.CG->isReachable(A.proc("dead")));
  EXPECT_FALSE(A.CG->isReachable(A.proc("deadtoo")));
}

TEST(CallGraph, BottomUpOrderPutsCalleesFirst) {
  FullAnalysis A = analyze(R"(proc main()
  call mid()
end
proc mid()
  call leaf()
end
proc leaf()
end
)");
  const auto &Order = A.CG->bottomUpOrder();
  auto pos = [&](const std::string &Name) {
    ProcId P = A.proc(Name);
    return std::find(Order.begin(), Order.end(), P) - Order.begin();
  };
  EXPECT_LT(pos("leaf"), pos("mid"));
  EXPECT_LT(pos("mid"), pos("main"));
}

TEST(CallGraph, TopDownIsReverseOfBottomUp) {
  FullAnalysis A = analyze(R"(proc main()
  call a()
  call b()
end
proc a()
  call b()
end
proc b()
end
)");
  auto Up = A.CG->bottomUpOrder();
  auto Down = A.CG->topDownOrder();
  std::reverse(Down.begin(), Down.end());
  EXPECT_EQ(Up, Down);
}

TEST(CallGraph, OrdersCoverExactlyReachableProcs) {
  FullAnalysis A = analyze(R"(proc main()
  call a()
end
proc a()
end
proc orphan()
end
)");
  EXPECT_EQ(A.CG->bottomUpOrder().size(), 2u);
  for (ProcId P : A.CG->bottomUpOrder())
    EXPECT_TRUE(A.CG->isReachable(P));
}

TEST(CallGraph, DetectsSelfRecursion) {
  FullAnalysis A = analyze(R"(proc main()
  call fact(5)
end
proc fact(n)
  if (n > 1) then
    call fact(n - 1)
  end if
end
)");
  EXPECT_TRUE(A.CG->isRecursive(A.proc("fact")));
  EXPECT_FALSE(A.CG->isRecursive(A.proc("main")));
}

TEST(CallGraph, DetectsMutualRecursion) {
  FullAnalysis A = analyze(R"(proc main()
  call even(4)
end
proc even(n)
  if (n > 0) then
    call odd(n - 1)
  end if
end
proc odd(n)
  if (n > 0) then
    call even(n - 1)
  end if
end
)");
  EXPECT_TRUE(A.CG->isRecursive(A.proc("even")));
  EXPECT_TRUE(A.CG->isRecursive(A.proc("odd")));
  EXPECT_EQ(A.CG->sccId(A.proc("even")), A.CG->sccId(A.proc("odd")));
  EXPECT_NE(A.CG->sccId(A.proc("main")), A.CG->sccId(A.proc("even")));
}

TEST(CallGraph, NonRecursiveProcsGetDistinctSccs) {
  FullAnalysis A = analyze(
      "proc main()\n  call f()\nend\nproc f()\nend\n");
  EXPECT_NE(A.CG->sccId(A.proc("main")), A.CG->sccId(A.proc("f")));
  EXPECT_FALSE(A.CG->isRecursive(A.proc("main")));
}

TEST(CallGraph, EntryIsRecorded) {
  FullAnalysis A = analyze("proc main()\nend\n");
  EXPECT_EQ(A.CG->entry(), A.proc("main"));
}
