//===- tests/ValueNumberingTests.cpp - analysis/ValueNumbering tests ------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueNumbering.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

//===----------------------------------------------------------------------===//
// VnContext: hash-consing, folding, identities.
//===----------------------------------------------------------------------===//

TEST(VnContext, ConstsAreHashConsed) {
  VnContext Ctx;
  EXPECT_EQ(Ctx.getConst(5), Ctx.getConst(5));
  EXPECT_NE(Ctx.getConst(5), Ctx.getConst(6));
}

TEST(VnContext, ParamsAreHashConsed) {
  VnContext Ctx;
  EXPECT_EQ(Ctx.getParam(1), Ctx.getParam(1));
  EXPECT_NE(Ctx.getParam(1), Ctx.getParam(2));
}

TEST(VnContext, OpaquesAreAlwaysFresh) {
  VnContext Ctx;
  EXPECT_NE(Ctx.makeOpaque(), Ctx.makeOpaque());
}

TEST(VnContext, ConstantFolding) {
  VnContext Ctx;
  const VnExpr *E =
      Ctx.getBinary(BinaryOp::Add, Ctx.getConst(2), Ctx.getConst(3));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->ConstValue, 5);
  EXPECT_EQ(Ctx.getUnary(UnaryOp::Neg, Ctx.getConst(4))->ConstValue, -4);
}

TEST(VnContext, DivisionByZeroFoldsToOpaque) {
  VnContext Ctx;
  const VnExpr *E =
      Ctx.getBinary(BinaryOp::Div, Ctx.getConst(1), Ctx.getConst(0));
  EXPECT_TRUE(E->isOpaque());
  EXPECT_TRUE(Ctx.getBinary(BinaryOp::Mod, Ctx.getConst(1),
                            Ctx.getConst(0))
                  ->isOpaque());
}

TEST(VnContext, IdentitiesPreservePassThrough) {
  VnContext Ctx;
  const VnExpr *X = Ctx.getParam(3);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, X, Ctx.getConst(0)), X);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, Ctx.getConst(0), X), X);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Sub, X, Ctx.getConst(0)), X);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Mul, X, Ctx.getConst(1)), X);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Div, X, Ctx.getConst(1)), X);
}

TEST(VnContext, AnnihilatorsFold) {
  VnContext Ctx;
  const VnExpr *X = Ctx.getParam(3);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Mul, X, Ctx.getConst(0))->ConstValue,
            0);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Sub, X, X)->ConstValue, 0);
  EXPECT_EQ(
      Ctx.getBinary(BinaryOp::LogicalAnd, Ctx.getConst(0), X)->ConstValue,
      0);
  EXPECT_EQ(
      Ctx.getBinary(BinaryOp::LogicalOr, Ctx.getConst(9), X)->ConstValue,
      1);
}

TEST(VnContext, OpaqueMinusItselfDoesNotFold) {
  VnContext Ctx;
  const VnExpr *O = Ctx.makeOpaque();
  EXPECT_FALSE(Ctx.getBinary(BinaryOp::Sub, O, O)->isConst());
}

TEST(VnContext, CommutativeCanonicalization) {
  VnContext Ctx;
  const VnExpr *A = Ctx.getParam(1);
  const VnExpr *B = Ctx.getParam(2);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, A, B),
            Ctx.getBinary(BinaryOp::Add, B, A));
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Mul, A, B),
            Ctx.getBinary(BinaryOp::Mul, B, A));
  // Subtraction is not commutative.
  EXPECT_NE(Ctx.getBinary(BinaryOp::Sub, A, B),
            Ctx.getBinary(BinaryOp::Sub, B, A));
}

TEST(VnContext, DoubleNegationCancels) {
  VnContext Ctx;
  const VnExpr *X = Ctx.getParam(1);
  EXPECT_EQ(Ctx.getUnary(UnaryOp::Neg, Ctx.getUnary(UnaryOp::Neg, X)), X);
}

TEST(VnExpr, ParamClassificationAndSupport) {
  VnContext Ctx;
  const VnExpr *Poly = Ctx.getBinary(
      BinaryOp::Add, Ctx.getBinary(BinaryOp::Mul, Ctx.getParam(1),
                                   Ctx.getConst(2)),
      Ctx.getParam(7));
  EXPECT_TRUE(isParamExpr(Poly));
  std::vector<SymbolId> Support;
  collectSupport(Poly, Support);
  EXPECT_EQ(Support.size(), 2u);

  const VnExpr *WithOpaque =
      Ctx.getBinary(BinaryOp::Add, Poly, Ctx.makeOpaque());
  EXPECT_FALSE(isParamExpr(WithOpaque));
}

TEST(VnExpr, SupportDeduplicates) {
  VnContext Ctx;
  const VnExpr *X = Ctx.getParam(4);
  const VnExpr *E = Ctx.getBinary(BinaryOp::Mul, X,
                                  Ctx.getBinary(BinaryOp::Add, X, X));
  std::vector<SymbolId> Support;
  collectSupport(E, Support);
  EXPECT_EQ(Support, std::vector<SymbolId>{4});
}

//===----------------------------------------------------------------------===//
// Whole-procedure value numbering.
//===----------------------------------------------------------------------===//

namespace {

struct VnBundle {
  FullAnalysis A;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<SsaForm> Ssa;
  std::unique_ptr<VnContext> Ctx;
  std::unique_ptr<ValueNumbering> VN;
};

VnBundle buildVn(const std::string &Source, const std::string &Proc,
                 const KillValueFn *KillFn = nullptr) {
  VnBundle B;
  B.A = analyze(Source);
  const Function &F = B.A.function(Proc);
  B.DT = std::make_unique<DominatorTree>(F);
  B.Ssa = std::make_unique<SsaForm>(
      F, B.A.Symbols, *B.DT, makeKillOracle(B.A.Symbols, B.A.MRI.get()));
  B.Ctx = std::make_unique<VnContext>();
  B.VN = std::make_unique<ValueNumbering>(*B.Ssa, B.A.Symbols, *B.Ctx,
                                          KillFn);
  return B;
}

/// Expression of the symbol's value at function exit.
const VnExpr *exitExpr(const VnBundle &B, SymbolId Sym) {
  const auto &Syms = B.Ssa->exitSymbols();
  for (uint32_t I = 0; I != Syms.size(); ++I)
    if (Syms[I] == Sym)
      return B.VN->exprOf(B.Ssa->exitEnv()[I]);
  ADD_FAILURE() << "symbol not in exit env";
  return nullptr;
}

} // namespace

TEST(ValueNumbering, TracksConstantsThroughArithmetic) {
  VnBundle B = buildVn(R"(proc main()
  call f(1)
end
proc f(x)
  x = 2 * 8
  x = x + 1
end
)",
                       "f");
  const VnExpr *E = exitExpr(B, B.A.symbolIn("f", "x"));
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->ConstValue, 17);
}

TEST(ValueNumbering, UnmodifiedFormalIsParamAtExit) {
  VnBundle B = buildVn(
      "proc main()\n  call f(1)\nend\nproc f(x)\n  print x\nend\n", "f");
  const VnExpr *E = exitExpr(B, B.A.symbolIn("f", "x"));
  ASSERT_TRUE(E->isParam());
  EXPECT_EQ(E->Param, B.A.symbolIn("f", "x"));
}

TEST(ValueNumbering, PolynomialOfFormalsAtExit) {
  VnBundle B = buildVn(R"(proc main()
  call f(1, 2)
end
proc f(a, b)
  a = a * 2 + b - 1
end
)",
                       "f");
  const VnExpr *E = exitExpr(B, B.A.symbolIn("f", "a"));
  EXPECT_TRUE(isParamExpr(E));
  EXPECT_FALSE(E->isConst());
  EXPECT_FALSE(E->isParam());
}

TEST(ValueNumbering, UninitializedLocalIsOpaque) {
  VnBundle B = buildVn(
      "proc main()\n  integer x\n  print x\nend\n", "main");
  SsaId Entry = B.Ssa->entryValue(B.A.symbolIn("main", "x"));
  EXPECT_TRUE(B.VN->exprOf(Entry)->isOpaque());
}

TEST(ValueNumbering, ReadAndLoadAreOpaque) {
  VnBundle B = buildVn(R"(array a(4)
proc main()
  integer x, y
  read x
  y = a(1)
  print x + y
end
)",
                       "main");
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Read || Instrs[I].Op == Opcode::Load)
        EXPECT_TRUE(
            B.VN->exprOf(B.Ssa->instrInfo(Blk, I).DefSsa)->isOpaque());
  }
}

TEST(ValueNumbering, DiamondSameValueCollapses) {
  VnBundle B = buildVn(R"(proc main()
  integer x, c
  read c
  if (c) then
    x = 7
  else
    x = 7
  end if
  print x
end
)",
                       "main");
  // The phi merges two identical constants: the print operand is 7.
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print) {
        const VnExpr *E = B.VN->exprOfOperand(Blk, I, 0);
        ASSERT_TRUE(E->isConst());
        EXPECT_EQ(E->ConstValue, 7);
      }
  }
}

TEST(ValueNumbering, DiamondDifferentValuesAreOpaque) {
  VnBundle B = buildVn(R"(proc main()
  integer x, c
  read c
  if (c) then
    x = 7
  else
    x = 8
  end if
  print x
end
)",
                       "main");
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print)
        EXPECT_TRUE(B.VN->exprOfOperand(Blk, I, 0)->isOpaque());
  }
}

TEST(ValueNumbering, CallKillWithoutEvaluatorIsOpaque) {
  VnBundle B = buildVn(R"(global g
proc main()
  g = 1
  call setg()
  print g
end
proc setg()
  g = 2
end
)",
                       "main");
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print)
        EXPECT_TRUE(B.VN->exprOfOperand(Blk, I, 0)->isOpaque());
  }
}

TEST(ValueNumbering, CallKillWithEvaluatorGetsConstant) {
  // Simulate a return jump function: every kill evaluates to 42.
  KillValueFn KillFn = [](const Instr &, SymbolId,
                          const CallSiteValues &) {
    return std::optional<int64_t>(42);
  };
  VnBundle B = buildVn(R"(global g
proc main()
  g = 1
  call setg()
  print g
end
proc setg()
  g = 2
end
)",
                       "main", &KillFn);
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print) {
        const VnExpr *E = B.VN->exprOfOperand(Blk, I, 0);
        ASSERT_TRUE(E->isConst());
        EXPECT_EQ(E->ConstValue, 42);
      }
  }
}

TEST(ValueNumbering, CallSiteValuesExposeActualsAndGlobals) {
  bool Checked = false;
  SymbolId GSym = InvalidSymbol;
  KillValueFn KillFn = [&](const Instr &, SymbolId,
                           const CallSiteValues &Values)
      -> std::optional<int64_t> {
    const VnExpr *Arg = Values.actual(0);
    EXPECT_TRUE(Arg->isConst());
    EXPECT_EQ(Arg->ConstValue, 11);
    const VnExpr *G = Values.global(GSym);
    EXPECT_TRUE(G->isConst());
    EXPECT_EQ(G->ConstValue, 3);
    Checked = true;
    return std::nullopt;
  };
  // Build, then rebuild VN with the checker once symbols are known.
  FullAnalysis A = analyze(R"(global g
proc main()
  integer v
  g = 3
  v = 0
  call f(11, v)
end
proc f(a, o)
  o = a
end
)");
  GSym = A.symbol("g");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));
  VnContext Ctx;
  ValueNumbering VN(Ssa, A.Symbols, Ctx, &KillFn);
  EXPECT_TRUE(Checked);
}

TEST(ValueNumbering, StringRendering) {
  VnContext Ctx;
  FullAnalysis A = analyze("global n\nproc main()\n  n = 1\nend\n");
  const VnExpr *E = Ctx.getBinary(
      BinaryOp::Mul,
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(A.symbol("n")),
                    Ctx.getConst(1)),
      Ctx.getConst(2));
  // Commutative operands are canonicalized by creation order.
  EXPECT_EQ(vnExprToString(E, A.Symbols), "(2 * (1 + n))");
}
