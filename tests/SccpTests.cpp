//===- tests/SccpTests.cpp - analysis/Sccp unit tests ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Sccp.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

struct SccpBundle {
  FullAnalysis A;
  std::unique_ptr<DominatorTree> DT;
  std::unique_ptr<SsaForm> Ssa;
  std::unique_ptr<Sccp> Analysis;
};

SccpBundle runSccp(const std::string &Source, const std::string &Proc,
                   const SccpSeeds *Seeds = nullptr,
                   const SccpKillFn *KillFn = nullptr) {
  SccpBundle B;
  B.A = analyze(Source);
  const Function &F = B.A.function(Proc);
  B.DT = std::make_unique<DominatorTree>(F);
  B.Ssa = std::make_unique<SsaForm>(
      F, B.A.Symbols, *B.DT, makeKillOracle(B.A.Symbols, B.A.MRI.get()));
  B.Analysis = std::make_unique<Sccp>(*B.Ssa, B.A.Symbols, Seeds, KillFn);
  return B;
}

/// Lattice value of the sole Print's operand in \p Proc.
LatticeValue printValue(const SccpBundle &B, const std::string &Proc) {
  const Function &F = B.A.function(Proc);
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print)
        return B.Analysis->operandValue(Blk, I, 0);
  }
  ADD_FAILURE() << "no print in " << Proc;
  return LatticeValue::bottom();
}

} // namespace

TEST(Sccp, FoldsStraightLineArithmetic) {
  SccpBundle B = runSccp(R"(proc main()
  integer x, y
  x = 6
  y = x * 7
  print y
end
)",
                         "main");
  LatticeValue V = printValue(B, "main");
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 42);
}

TEST(Sccp, ReadIsBottom) {
  SccpBundle B = runSccp(
      "proc main()\n  integer x\n  read x\n  print x\nend\n", "main");
  EXPECT_TRUE(printValue(B, "main").isBottom());
}

TEST(Sccp, DivisionByZeroIsBottom) {
  SccpBundle B = runSccp(
      "proc main()\n  integer x\n  x = 1 / 0\n  print x\nend\n", "main");
  EXPECT_TRUE(printValue(B, "main").isBottom());
}

TEST(Sccp, ConstantBranchPrunesDeadArm) {
  SccpBundle B = runSccp(R"(proc main()
  integer x, f
  f = 0
  x = 1
  if (f == 1) then
    x = 2
  end if
  print x
end
)",
                         "main");
  // The then-arm is unexecutable, so the phi sees only x=1.
  LatticeValue V = printValue(B, "main");
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 1);
  // Some block (the then-arm) must be unexecutable.
  const Function &F = B.A.function("main");
  unsigned Dead = 0;
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    Dead += !B.Analysis->blockExecutable(Blk);
  EXPECT_EQ(Dead, 1u);
}

TEST(Sccp, UnknownBranchKeepsBothArms) {
  SccpBundle B = runSccp(R"(proc main()
  integer x, f
  read f
  if (f == 1) then
    x = 2
  else
    x = 3
  end if
  print x
end
)",
                         "main");
  EXPECT_TRUE(printValue(B, "main").isBottom());
  const Function &F = B.A.function("main");
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk)
    EXPECT_TRUE(B.Analysis->blockExecutable(Blk));
}

TEST(Sccp, AgreeingArmsStayConstant) {
  SccpBundle B = runSccp(R"(proc main()
  integer x, f
  read f
  if (f == 1) then
    x = 5
  else
    x = 5
  end if
  print x
end
)",
                         "main");
  LatticeValue V = printValue(B, "main");
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 5);
}

TEST(Sccp, LoopCarriedVariableIsBottom) {
  SccpBundle B = runSccp(R"(proc main()
  integer i, n
  read n
  do i = 1, n
    print i
  end do
end
)",
                         "main");
  EXPECT_TRUE(printValue(B, "main").isBottom());
}

TEST(Sccp, ZeroTripLoopBodyUnexecutable) {
  SccpBundle B = runSccp(R"(proc main()
  integer i
  do i = 5, 1
    print i
  end do
  print i
end
)",
                         "main");
  // The body never executes; i keeps its initial value 5 at the final
  // print. (Two prints: the one in the body is unexecutable.)
  const Function &F = B.A.function("main");
  bool SawFinal = false;
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I) {
      if (Instrs[I].Op != Opcode::Print ||
          !B.Analysis->blockExecutable(Blk))
        continue;
      LatticeValue V = B.Analysis->operandValue(Blk, I, 0);
      ASSERT_TRUE(V.isConst());
      EXPECT_EQ(V.value(), 5);
      SawFinal = true;
    }
  }
  EXPECT_TRUE(SawFinal);
}

TEST(Sccp, FormalsDefaultToBottom) {
  SccpBundle B = runSccp(
      "proc main()\n  call f(1)\nend\nproc f(x)\n  print x\nend\n", "f");
  EXPECT_TRUE(printValue(B, "f").isBottom());
}

TEST(Sccp, SeededFormalBecomesConstant) {
  FullAnalysis A = analyze(
      "proc main()\n  call f(1)\nend\nproc f(x)\n  print x + 1\nend\n");
  const Function &F = A.function("f");
  DominatorTree DT(F);
  SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));
  SccpSeeds Seeds;
  Seeds.emplace(A.symbolIn("f", "x"), LatticeValue::constant(10));
  Sccp Analysis(Ssa, A.Symbols, &Seeds, nullptr);
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print) {
        LatticeValue V = Analysis.operandValue(Blk, I, 0);
        ASSERT_TRUE(V.isConst());
        EXPECT_EQ(V.value(), 11);
      }
  }
}

TEST(Sccp, SeedsNeverApplyToLocals) {
  FullAnalysis A = analyze(
      "proc main()\n  integer x\n  print x\nend\n");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));
  SccpSeeds Seeds;
  Seeds.emplace(A.symbolIn("main", "x"), LatticeValue::constant(1));
  Sccp Analysis(Ssa, A.Symbols, &Seeds, nullptr);
  for (BlockId Blk = 0; Blk != F.numBlocks(); ++Blk) {
    const auto &Instrs = F.block(Blk).Instrs;
    for (uint32_t I = 0; I != Instrs.size(); ++I)
      if (Instrs[I].Op == Opcode::Print)
        EXPECT_TRUE(Analysis.operandValue(Blk, I, 0).isBottom());
  }
}

TEST(Sccp, CallKillsAreBottomWithoutKillFn) {
  SccpBundle B = runSccp(R"(global g
proc main()
  g = 1
  call setg()
  print g
end
proc setg()
  g = 2
end
)",
                         "main");
  EXPECT_TRUE(printValue(B, "main").isBottom());
}

TEST(Sccp, KillFnSuppliesPostCallValue) {
  SccpKillFn KillFn = [](const Instr &, SymbolId,
                         const SccpCallValues &) {
    return LatticeValue::constant(2);
  };
  SccpBundle B = runSccp(R"(global g
proc main()
  g = 1
  call setg()
  print g
end
proc setg()
  g = 2
end
)",
                         "main", nullptr, &KillFn);
  LatticeValue V = printValue(B, "main");
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 2);
}

TEST(Sccp, ConstantBranchesReported) {
  SccpBundle B = runSccp(R"(proc main()
  integer f, x
  f = 0
  read x
  if (f == 1) then
    print 1
  end if
  if (x == 1) then
    print 2
  end if
end
)",
                         "main");
  auto Branches = B.Analysis->constantBranches();
  // Exactly the f-branch is constant (false); the x-branch is unknown.
  ASSERT_EQ(Branches.size(), 1u);
  EXPECT_FALSE(Branches[0].second);
}

TEST(Sccp, LogicalOperatorsFold) {
  SccpBundle B = runSccp(R"(proc main()
  integer a
  a = 3
  print (a > 1 and a < 5) or not a == 3
end
)",
                         "main");
  LatticeValue V = printValue(B, "main");
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 1);
}
