//===- tests/InlinerTests.cpp - ipcp/Inliner unit tests -------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Inliner.h"

#include "ipcp/Pipeline.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

InlineResult inlineSource(const std::string &Source,
                          InlineOptions Opts = InlineOptions()) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return inlineProgram(*Ctx, Symbols, Opts);
}

/// Runs the intraprocedural analyzer over (possibly inlined) source.
unsigned intraCount(const std::string &Source) {
  PipelineOptions Opts;
  Opts.IntraproceduralOnly = true;
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

} // namespace

TEST(Inliner, ResultReparsesCleanly) {
  InlineResult R = inlineSource(R"(global g
proc main()
  g = 1
  call f(2)
end
proc f(x)
  print x + g
end
)");
  EXPECT_EQ(R.InlinedCalls, 1u);
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(R.Source, Diags);
  Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << R.Source;
}

TEST(Inliner, LiteralArgumentBecomesVisibleIntraprocedurally) {
  const char *Source = R"(proc main()
  call f(5)
end
proc f(x)
  print x
  print x * 2
end
)";
  EXPECT_EQ(intraCount(Source), 0u);
  InlineResult R = inlineSource(Source);
  EXPECT_EQ(intraCount(R.Source), 2u); // Both uses now local to main.
}

TEST(Inliner, ByReferenceOutParamWritesCaller) {
  const char *Source = R"(proc main()
  integer v
  call set(v)
  print v
end
proc set(o)
  o = 77
end
)";
  InlineResult R = inlineSource(Source);
  ASSERT_EQ(R.InlinedCalls, 1u);
  // After inlining, v = 77 is a plain local assignment.
  EXPECT_NE(R.Source.find("v = 77"), std::string::npos) << R.Source;
  EXPECT_EQ(intraCount(R.Source), 1u);
}

TEST(Inliner, ExpressionActualBindsByValue) {
  const char *Source = R"(proc main()
  integer v
  v = 3
  call set(v + 0)
  print v
end
proc set(o)
  o = 99
end
)";
  InlineResult R = inlineSource(Source);
  // v keeps its value: the temporary absorbed the write.
  PipelineOptions Opts;
  PipelineResult Result = runPipeline(R.Source, Opts);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  // Exactly two constant uses of v survive: the one inside 'v + 0'
  // (feeding the by-value temporary) and the final 'print v'. The
  // temporary itself is overwritten with 99 and never read.
  EXPECT_EQ(intraCount(R.Source), 2u);
}

TEST(Inliner, CalleeLocalsAreRenamed) {
  const char *Source = R"(proc main()
  integer t
  t = 1
  call f()
  print t
end
proc f()
  integer t
  t = 2
  print t
end
)";
  InlineResult R = inlineSource(Source);
  // main's t is still 1 at the print; the callee's t was renamed.
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(R.Source, Diags);
  Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_NE(R.Source.find("t__i"), std::string::npos);
}

TEST(Inliner, NestedCallsFullyIntegrate) {
  const char *Source = R"(proc main()
  call a(10)
end
proc a(x)
  call b(x + 1)
end
proc b(y)
  print y
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_TRUE(R.fullyIntegrated());
  // After full integration main holds: x' = 10 (literal, no use);
  // y' = x' + 1 (one constant use); print y' (one constant use).
  EXPECT_EQ(intraCount(R.Source), 2u);
}

TEST(Inliner, RecursiveCalleeKept) {
  const char *Source = R"(proc main()
  call fact(5)
end
proc fact(n)
  if (n > 1) then
    call fact(n - 1)
  end if
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_GT(R.SkippedRecursive, 0u);
  EXPECT_NE(R.Source.find("call fact("), std::string::npos);
}

TEST(Inliner, EarlyReturnCalleeKept) {
  const char *Source = R"(proc main()
  integer v
  v = 0
  call guard(v)
end
proc guard(x)
  if (x == 0) then
    return
  end if
  print x
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_EQ(R.InlinedCalls, 0u);
  EXPECT_EQ(R.SkippedHasReturn, 1u);
  EXPECT_NE(R.Source.find("call guard("), std::string::npos);
}

TEST(Inliner, BudgetStopsGrowth) {
  const char *Source = R"(proc main()
  call f(1)
  call f(2)
end
proc f(x)
  print x
  print x
  print x
end
)";
  InlineOptions Opts;
  Opts.MaxProgramStmts = 1; // Absurdly small: nothing gets inlined.
  InlineResult R = inlineSource(Source, Opts);
  EXPECT_GT(R.SkippedBudget, 0u);
}

TEST(Inliner, GlobalsUntouchedByRenaming) {
  const char *Source = R"(global counter
proc main()
  counter = 0
  call bump()
  call bump()
  print counter
end
proc bump()
  counter = counter + 1
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_TRUE(R.fullyIntegrated());
  // After full integration, intraprocedural propagation sees
  // counter = 2 at the print.
  EXPECT_GT(intraCount(R.Source), 0u);
}

TEST(Inliner, PreservesObservableSemanticsUnderAnalysis) {
  // The interprocedural analyzer over the original program and the
  // intraprocedural analyzer over the integrated program must agree on
  // the constants at corresponding prints (spot-checked via transformed
  // source).
  const char *Source = R"(global base
proc main()
  base = 50
  call work(4)
end
proc work(k)
  print k * base
end
)";
  PipelineOptions Ip;
  Ip.EmitTransformedSource = true;
  PipelineResult Original = runPipeline(Source, Ip);
  ASSERT_TRUE(Original.Ok);
  EXPECT_NE(Original.TransformedSource.find("print 4 * 50"),
            std::string::npos);

  InlineResult R = inlineSource(Source);
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  Intra.EmitTransformedSource = true;
  PipelineResult Integrated = runPipeline(R.Source, Intra);
  ASSERT_TRUE(Integrated.Ok);
  EXPECT_NE(Integrated.TransformedSource.find("print 4 * 50"),
            std::string::npos)
      << Integrated.TransformedSource;
}

TEST(Inliner, SkippedCallInsideIntegratedBodyStaysResolved) {
  // A recursive callee is kept (not integrated), but the procedure
  // containing that kept call is itself integrated into main. Cloning
  // the kept CallStmt must preserve its resolved callee: the second
  // splice pass indexes its bookkeeping by callee id, and an unresolved
  // clone used to index it with the invalid sentinel (out-of-range
  // crash on oracle fuzz seed 22).
  const char *Source = R"(proc main()
  call a(3)
end
proc a(x)
  call r(x)
end
proc r(n)
  if (n > 0) then
    print n
    call r(n - 1)
  end if
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_EQ(R.InlinedCalls, 1u); // a into main; r stays.
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(R.Source, Diags);
  Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << R.Source;
  EXPECT_NE(R.Source.find("call r"), std::string::npos) << R.Source;
}

TEST(Inliner, DoubleInliningOfSameCalleeGetsDistinctNames) {
  const char *Source = R"(proc main()
  call f(1)
  call f(2)
end
proc f(x)
  integer s
  s = x * 10
  print s
end
)";
  InlineResult R = inlineSource(Source);
  EXPECT_EQ(R.InlinedCalls, 2u);
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(R.Source, Diags);
  Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << R.Source;
  // Both clones' constants are visible intraprocedurally.
  EXPECT_EQ(intraCount(R.Source), 4u); // x-use and s-use per clone.
}
