//===- tests/DistributedTests.cpp - The distributed-analysis wall ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 'check-dist' label: multi-process sharded suite runs and the
/// ipcp-serve shard router must be invisible to results.
///
///   * The full (12 programs x 13 configs) grid and 30 random-seed
///     programs come back byte-identical (deterministic fields) from
///     runShardedSuite vs a single-process runSuite.
///   * A worker crash mid-partition is recovered by reassignment with
///     an identical grid; exhausted retries fail loudly, naming the
///     partition. Garbled job/result files are rejected, not guessed at.
///   * runShardedAnalysis renders the same report as a local
///     runPipeline, including after a crash-and-reassign.
///   * The router forwards byte-identically (in-process and through
///     ipcp-driver --server-url against a spawned fleet), answers
///     malformed lines locally, survives backend death by rehash +
///     retry, degrades to structured `overloaded` when the whole fleet
///     is dead, and shuts down cleanly under concurrent traffic and a
///     concurrent kill (the TSan target for the lock-free teardown).
///
/// tools/verify.sh runs the label under the default and asan presets,
/// and the router tests under tsan.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "serve/Router.h"
#include "serve/Server.h"
#include "serve/Transport.h"
#include "workloads/RandomProgram.h"
#include "workloads/ShardedSuite.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

ShardSpawnOptions workerSpawn() {
  ShardSpawnOptions S;
#ifdef IPCP_DRIVER_PATH
  S.WorkerBinary = IPCP_DRIVER_PATH;
#endif
  return S;
}

/// Asserts the sharded grid equals the single-process one on every
/// deterministic field.
void expectGridsEqual(const SuiteRunResult &Local,
                      const ShardedSuiteResult &Sharded) {
  ASSERT_TRUE(Sharded.Ok) << Sharded.Error;
  ASSERT_EQ(Local.NumPrograms, Sharded.NumPrograms);
  ASSERT_EQ(Local.NumConfigs, Sharded.NumConfigs);
  ASSERT_EQ(Local.Cells.size(), Sharded.Cells.size());
  for (size_t I = 0; I < Local.Cells.size(); ++I) {
    const SuiteCell &L = Local.Cells[I];
    const ShardCellResult &S = Sharded.Cells[I];
    EXPECT_EQ(L.Program, S.Program) << "cell " << I;
    EXPECT_EQ(L.Config, S.Config) << "cell " << I;
    EXPECT_EQ(L.Ok, S.Ok) << L.Program << " / " << L.Config;
    EXPECT_EQ(L.SubstitutedConstants, S.SubstitutedConstants)
        << L.Program << " / " << L.Config;
    EXPECT_EQ(L.ConstantPrints, S.ConstantPrints)
        << L.Program << " / " << L.Config;
  }
}

JsonValue parsedReply(const std::string &ReplyLine) {
  std::string Err;
  std::optional<JsonValue> V = parseJson(ReplyLine, Err);
  EXPECT_TRUE(V.has_value()) << Err << " in: " << ReplyLine;
  return V ? *V : JsonValue::object();
}

std::string errorKind(const JsonValue &Reply) {
  const JsonValue *E = Reply.find("error");
  return E ? E->strOr("kind", "") : "";
}

std::string analyzeLine(const std::string &Id, const std::string &Source) {
  return "{\"id\":\"" + Id +
         "\",\"method\":\"analyze-source\",\"params\":{\"source\":" +
         JsonValue(Source).dump() + "}}";
}

/// A distinct tiny program per index so requests spread across the
/// rendezvous ring instead of all hashing to one backend.
std::string distinctProgram(unsigned I) {
  return "proc main()\n  call f(" + std::to_string(I + 1) +
         ")\nend\nproc f(x)\n  print x\nend\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Sharded suite runs: byte-identity with the single process
//===----------------------------------------------------------------------===//

TEST(ShardedSuite, FullGridMatchesSingleProcess) {
  const std::vector<WorkloadProgram> &Programs = benchmarkSuite();
  std::vector<SuiteConfig> Configs = configsByName("all");

  SuiteRunResult Local = runSuite(Programs, Configs);

  ShardedSuiteOptions Opts;
  Opts.NumWorkers = 4;
  Opts.ConfigSet = "all";
  Opts.Spawn = workerSpawn();
  ShardedSuiteResult Sharded = runShardedSuite(Programs, Opts);

  EXPECT_EQ(4u, Sharded.WorkersSpawned);
  EXPECT_EQ(0u, Sharded.WorkerCrashes);
  expectGridsEqual(Local, Sharded);
}

TEST(ShardedSuite, RandomProgramsMatchSingleProcess) {
  std::vector<WorkloadProgram> Programs;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    WorkloadProgram W{};
    W.Name = "rand" + std::to_string(Seed);
    W.Source = generateRandomProgram(Spec);
    Programs.push_back(std::move(W));
  }

  SuiteRunResult Local = runSuite(Programs, configsByName("all"));

  ShardedSuiteOptions Opts;
  Opts.NumWorkers = 3;
  Opts.ConfigSet = "all";
  Opts.Spawn = workerSpawn();
  ShardedSuiteResult Sharded = runShardedSuite(Programs, Opts);
  expectGridsEqual(Local, Sharded);
}

TEST(ShardedSuite, CrashedWorkerPartitionIsReassigned) {
  const std::vector<WorkloadProgram> &Suite = benchmarkSuite();
  std::vector<WorkloadProgram> Programs(Suite.begin(), Suite.begin() + 6);

  SuiteRunResult Local = runSuite(Programs, configsByName("table2"));

  ShardedSuiteOptions Opts;
  Opts.NumWorkers = 3;
  Opts.ConfigSet = "table2";
  Opts.Spawn = workerSpawn();
  Opts.Spawn.CrashPartitionIndex = 1;
  Opts.Spawn.CrashAfterCells = 1; // Die mid-partition, not before work.
  ShardedSuiteResult Sharded = runShardedSuite(Programs, Opts);

  EXPECT_GE(Sharded.WorkerCrashes, 1u);
  EXPECT_GE(Sharded.PartitionsReassigned, 1u);
  expectGridsEqual(Local, Sharded);
}

TEST(ShardedSuite, ExhaustedRetriesFailLoudly) {
  const std::vector<WorkloadProgram> &Suite = benchmarkSuite();
  std::vector<WorkloadProgram> Programs(Suite.begin(), Suite.begin() + 2);

  ShardedSuiteOptions Opts;
  Opts.NumWorkers = 2;
  Opts.ConfigSet = "table2";
  Opts.Spawn = workerSpawn();
  Opts.Spawn.MaxAttempts = 1; // No recovery budget: the crash is fatal.
  Opts.Spawn.CrashPartitionIndex = 0;
  Opts.Spawn.CrashAfterCells = 0;
  ShardedSuiteResult Sharded = runShardedSuite(Programs, Opts);

  EXPECT_FALSE(Sharded.Ok);
  EXPECT_NE(std::string::npos, Sharded.Error.find("partition"))
      << Sharded.Error;
  EXPECT_GE(Sharded.WorkerCrashes, 1u);
}

//===----------------------------------------------------------------------===//
// Job/result file hardening: parse-or-reject, never guess
//===----------------------------------------------------------------------===//

TEST(ShardFiles, JobRoundTripsAndRejectsGarbage) {
  ShardJob Job;
  Job.JobMode = ShardJob::Mode::Cells;
  Job.ConfigSet = "table3";
  Job.EmitSummaries = true;
  Job.Programs.push_back({"p1", "proc main()\n  print 1\nend\n"});
  Job.Programs.push_back({"p2", "proc main()\n  print 2\nend\n"});

  std::string Text = serializeShardJob(Job);
  ShardJob Back;
  std::string Error;
  ASSERT_TRUE(parseShardJob(Text, Back, Error)) << Error;
  EXPECT_EQ(serializeShardJob(Back), Text);

  for (const std::string &Bad : {
           std::string("not json at all"),
           std::string("[1,2,3]"),
           Text.substr(0, Text.size() / 2),
           std::string("{\"format\":\"ipcp-shard-job\",\"version\":99}"),
           std::string("{\"format\":\"ipcp-summary\",\"version\":1}"),
       }) {
    ShardJob Out;
    std::string Err;
    EXPECT_FALSE(parseShardJob(Bad, Out, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(ShardFiles, ResultRoundTripsAndRejectsGarbage) {
  ShardResult R;
  R.Cells.push_back({"p1", "poly", true, 4, 2});
  R.Cells.push_back({"p1", "pass", true, 3, 1});
  R.Summaries.push_back("{\"format\":\"ipcp-summary\"}");

  std::string Text = serializeShardResult(R);
  ShardResult Back;
  std::string Error;
  ASSERT_TRUE(parseShardResult(Text, Back, Error)) << Error;
  EXPECT_EQ(serializeShardResult(Back), Text);

  for (const std::string &Bad : {
           std::string(""),
           Text.substr(0, Text.size() - 3),
           std::string("{\"format\":\"ipcp-shard-result\",\"version\":2}"),
           std::string("{\"format\":\"ipcp-shard-job\",\"version\":1}"),
       }) {
    ShardResult Out;
    std::string Err;
    EXPECT_FALSE(parseShardResult(Bad, Out, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Sharded analysis: merged summaries render the local report
//===----------------------------------------------------------------------===//

namespace {

PipelineOptions configNamed(const std::string &Name) {
  for (const SuiteConfig &C : configsByName("all"))
    if (C.Name == Name)
      return C.Opts;
  ADD_FAILURE() << "no config named " << Name;
  return {};
}

} // namespace

TEST(ShardedAnalysis, MatchesLocalPipelineReport) {
  const std::vector<WorkloadProgram> &Suite = benchmarkSuite();
  ReportOptions Report;
  Report.Stats = true;

  for (const char *ProgramName : {"trfd", "ocean"}) {
    const WorkloadProgram *W = nullptr;
    for (const WorkloadProgram &P : Suite)
      if (P.Name == ProgramName)
        W = &P;
    ASSERT_NE(nullptr, W);

    for (const char *ConfigName : {"poly", "pass", "literal"}) {
      PipelineOptions Opts = configNamed(ConfigName);

      PipelineResult Local = runPipeline(W->Source, Opts);
      ASSERT_TRUE(Local.Ok) << Local.Error;

      ShardedAnalysisOptions SOpts;
      SOpts.NumShards = 3;
      SOpts.Spawn = workerSpawn();
      ShardedAnalysisResult Sharded =
          runShardedAnalysis(W->Name, W->Source, Opts, SOpts);
      ASSERT_TRUE(Sharded.Ok) << Sharded.Error;

      EXPECT_EQ(renderAnalysisReport(Opts, Local, Report),
                renderAnalysisReport(Opts, Sharded.Pipeline, Report))
          << ProgramName << " / " << ConfigName;
    }
  }
}

TEST(ShardedAnalysis, RecoversFromWorkerCrash) {
  const std::vector<WorkloadProgram> &Suite = benchmarkSuite();
  const WorkloadProgram &W = Suite.front();
  PipelineOptions Opts; // Default: polynomial + return jump functions.

  PipelineResult Local = runPipeline(W.Source, Opts);
  ASSERT_TRUE(Local.Ok) << Local.Error;

  ShardedAnalysisOptions SOpts;
  SOpts.NumShards = 2;
  SOpts.Spawn = workerSpawn();
  SOpts.Spawn.CrashPartitionIndex = 0;
  ShardedAnalysisResult Sharded =
      runShardedAnalysis(W.Name, W.Source, Opts, SOpts);
  ASSERT_TRUE(Sharded.Ok) << Sharded.Error;
  EXPECT_GE(Sharded.WorkerCrashes, 1u);
  EXPECT_GE(Sharded.PartitionsReassigned, 1u);

  ReportOptions Report;
  Report.Stats = true;
  EXPECT_EQ(renderAnalysisReport(Opts, Local, Report),
            renderAnalysisReport(Opts, Sharded.Pipeline, Report));
}

TEST(ShardedAnalysis, RejectsNonShardableConfigs) {
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  ShardedAnalysisOptions SOpts;
  SOpts.Spawn = workerSpawn();
  ShardedAnalysisResult R = runShardedAnalysis(
      "p", "proc main()\n  print 1\nend\n", Complete, SOpts);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Router: in-process backend (no subprocess needed)
//===----------------------------------------------------------------------===//

namespace {

/// One backend Server behind a loopback listener, for router tests that
/// don't need process isolation.
struct InProcessBackend {
  Server S{{.Workers = 2}};
  TcpListener Listener;
  std::thread Accept;
  bool Up = false;

  std::string start() {
    std::string Error;
    if (!Listener.listen(0, Error))
      return Error;
    Accept = std::thread([this] { Listener.run(S); });
    Up = true;
    return "";
  }
  std::string url() const {
    return "127.0.0.1:" + std::to_string(Listener.port());
  }
  ~InProcessBackend() {
    if (Up) {
      Listener.stop();
      Accept.join();
    }
    S.shutdown();
  }
};

} // namespace

TEST(Router, ForwardsByteIdenticallyToDirectBackend) {
  InProcessBackend Routed, Direct;
  std::string Error = Routed.start();
  if (!Error.empty())
    GTEST_SKIP() << "cannot bind a loopback socket here: " << Error;
  ASSERT_EQ("", Direct.start());

  RouterOptions ROpts;
  ROpts.Backends = {Routed.url()};
  Router R(ROpts);
  ASSERT_TRUE(R.start(Error)) << Error;

  // The same request sequence against two cold servers — one direct,
  // one through the router — must produce byte-identical replies,
  // including the repeat (its "cached" flag flips identically).
  std::vector<std::string> Lines = {
      analyzeLine("a", distinctProgram(0)),
      analyzeLine("b", distinctProgram(1)),
      analyzeLine("a", distinctProgram(0)), // Repeat: reply-cache hit.
      "{\"id\":\"c\",\"method\":\"analyze-suite-program\","
      "\"params\":{\"program\":\"trfd\",\"report\":{\"stats\":true}}}",
  };
  for (const std::string &Line : Lines)
    EXPECT_EQ(Direct.S.handle(Line), R.handle(Line)) << Line;

  JsonValue Stats = R.statsJson();
  EXPECT_EQ(4, Stats.intOr("forwarded", -1));
  EXPECT_EQ(1, Stats.intOr("backends_alive", -1));

  R.shutdown();
}

TEST(Router, MalformedLinesAnsweredLocally) {
  InProcessBackend B;
  std::string Error = B.start();
  if (!Error.empty())
    GTEST_SKIP() << "cannot bind a loopback socket here: " << Error;

  RouterOptions ROpts;
  ROpts.Backends = {B.url()};
  Router R(ROpts);
  ASSERT_TRUE(R.start(Error)) << Error;

  for (const char *Bad :
       {"{nope", "[]", "{\"id\":\"x\",\"method\":\"no-such-method\"}"}) {
    JsonValue Reply = parsedReply(R.handle(Bad));
    EXPECT_FALSE(Reply.boolOr("ok", true)) << Bad;
    EXPECT_EQ("malformed", errorKind(Reply)) << Bad;
  }

  // None of them cost a backend round trip.
  JsonValue Stats = R.statsJson();
  EXPECT_EQ(3, Stats.intOr("malformed", -1));
  EXPECT_EQ(0, Stats.intOr("forwarded", -1));

  R.shutdown();
}

TEST(Router, StatsAggregatesBackendBlocks) {
  InProcessBackend B;
  std::string Error = B.start();
  if (!Error.empty())
    GTEST_SKIP() << "cannot bind a loopback socket here: " << Error;

  RouterOptions ROpts;
  ROpts.Backends = {B.url()};
  Router R(ROpts);
  ASSERT_TRUE(R.start(Error)) << Error;

  ASSERT_TRUE(
      parsedReply(R.handle(analyzeLine("a", distinctProgram(0))))
          .boolOr("ok", false));

  JsonValue Reply =
      parsedReply(R.handle("{\"id\":\"s\",\"method\":\"stats\"}"));
  ASSERT_TRUE(Reply.boolOr("ok", false));
  const JsonValue *Result = Reply.find("result");
  ASSERT_NE(nullptr, Result);
  EXPECT_EQ("router", Result->strOr("role", ""));
  const JsonValue *Backends = Result->find("backends");
  ASSERT_NE(nullptr, Backends);
  ASSERT_TRUE(Backends->isArray());
  ASSERT_EQ(1u, Backends->elements().size());
  const JsonValue &Block = Backends->elements().front();
  EXPECT_EQ(B.url(), Block.strOr("url", ""));
  EXPECT_TRUE(Block.boolOr("alive", false));
  EXPECT_EQ(1, Block.intOr("forwarded", -1));
  // The live backend's own stats reply is embedded.
  const JsonValue *Inner = Block.find("stats");
  ASSERT_NE(nullptr, Inner);
  EXPECT_GE(Inner->intOr("received", -1), 1);

  R.shutdown();
}

//===----------------------------------------------------------------------===//
// Router: spawned fleet (process isolation, death, teardown)
//===----------------------------------------------------------------------===//

#ifdef IPCP_SERVE_PATH
namespace {

RouterOptions spawnedFleet(unsigned N) {
  RouterOptions O;
  O.SpawnBackends = N;
  O.ServeBinary = IPCP_SERVE_PATH;
  O.BackendWorkers = 2;
  return O;
}

} // namespace

TEST(RouterFleet, BackendDeathRehashesAndRetries) {
  Router R(spawnedFleet(2));
  std::string Error;
  if (!R.start(Error))
    GTEST_SKIP() << "cannot spawn a backend fleet here: " << Error;
  ASSERT_EQ(2u, R.numBackends());

  // Warm both backends with traffic spread across the ring.
  for (unsigned I = 0; I < 8; ++I)
    ASSERT_TRUE(parsedReply(R.handle(analyzeLine("w" + std::to_string(I),
                                                 distinctProgram(I))))
                    .boolOr("ok", false));

  R.killBackend(0);

  // killBackend does not mark the backend dead — forwards discover the
  // death organically. Distinct keys rendezvous ~half to the corpse, so
  // a bounded stream of fresh requests reaches it with certainty for
  // all practical purposes (miss probability 2^-48); every reply must
  // still be ok, computed by the survivor after rehash + retry.
  for (unsigned I = 0; I < 48 && R.numAlive() == 2; ++I)
    ASSERT_TRUE(parsedReply(R.handle(analyzeLine("k" + std::to_string(I),
                                                 distinctProgram(100 + I))))
                    .boolOr("ok", false));
  EXPECT_EQ(1u, R.numAlive());

  JsonValue Stats = R.statsJson();
  EXPECT_EQ(1, Stats.intOr("backend_deaths", -1));
  EXPECT_GE(Stats.intOr("retries", -1), 1);
  EXPECT_EQ(1, Stats.intOr("backends_alive", -1));

  R.shutdown();
}

TEST(RouterFleet, AllBackendsDownYieldsOverloaded) {
  Router R(spawnedFleet(2));
  std::string Error;
  if (!R.start(Error))
    GTEST_SKIP() << "cannot spawn a backend fleet here: " << Error;

  R.killBackend(0);
  R.killBackend(1);

  JsonValue Reply =
      parsedReply(R.handle(analyzeLine("x", distinctProgram(0))));
  EXPECT_FALSE(Reply.boolOr("ok", true));
  EXPECT_EQ("overloaded", errorKind(Reply));
  const JsonValue *E = Reply.find("error");
  ASSERT_NE(nullptr, E);
  EXPECT_NE(std::string::npos, E->strOr("message", "").find("down"));

  // The router itself is still alive: stats answers locally.
  EXPECT_TRUE(parsedReply(R.handle("{\"id\":\"s\",\"method\":\"stats\"}"))
                  .boolOr("ok", false));
  EXPECT_EQ(0u, R.numAlive());

  R.shutdown();
}

/// The TSan target for the teardown ordering: traffic, a backend kill,
/// and shutdown() all race, and every submitted request must still get
/// exactly one reply (computed, shed, or error — never dropped).
TEST(RouterFleet, ShutdownRacesWithTrafficAndBackendDeath) {
  Router R(spawnedFleet(2));
  std::string Error;
  if (!R.start(Error))
    GTEST_SKIP() << "cannot spawn a backend fleet here: " << Error;

  std::atomic<unsigned> Submitted{0}, Answered{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < 4; ++T)
    Clients.emplace_back([&, T] {
      for (unsigned I = 0; I < 8; ++I) {
        std::string Line =
            I % 4 == 3 ? "{malformed"
                       : analyzeLine("t" + std::to_string(T) + "." +
                                         std::to_string(I),
                                     distinctProgram(T * 8 + I));
        Submitted.fetch_add(1);
        R.submit(std::move(Line),
                 [&](std::string) { Answered.fetch_add(1); });
      }
    });
  std::thread Killer([&] { R.killBackend(0); });
  std::thread Stopper([&] { R.shutdown(); });

  for (std::thread &T : Clients)
    T.join();
  Killer.join();
  Stopper.join();
  R.shutdown(); // Idempotent.

  EXPECT_EQ(Submitted.load(), Answered.load());
  EXPECT_TRUE(R.draining());

  // Post-shutdown submissions are shed with a structured reply.
  JsonValue Reply =
      parsedReply(R.handle(analyzeLine("late", distinctProgram(0))));
  EXPECT_FALSE(Reply.boolOr("ok", true));
  EXPECT_EQ("shutting-down", errorKind(Reply));
}

//===----------------------------------------------------------------------===//
// Differential: driver --server-url through the front tier
//===----------------------------------------------------------------------===//

#ifdef IPCP_DRIVER_PATH
namespace {

bool runCommand(const std::string &Cmd, std::string &Out) {
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  return pclose(P) == 0;
}

} // namespace

TEST(RouterFleet, DriverThroughRouterMatchesLocal) {
  Router R(spawnedFleet(2));
  std::string Error;
  if (!R.start(Error))
    GTEST_SKIP() << "cannot spawn a backend fleet here: " << Error;

  TcpListener Front;
  ASSERT_TRUE(Front.listen(0, Error)) << Error;
  std::thread Accept([&] { Front.run(R); });
  std::string Url = "127.0.0.1:" + std::to_string(Front.port());

  const std::string Driver = IPCP_DRIVER_PATH;
  for (const char *Flags :
       {"--suite=ocean", "--suite=ocean --stats", "--suite=trfd --quiet",
        "--suite=mdg --jf=pass --no-rjf", "--suite=qcd --emit-source"}) {
    std::string Local, Routed;
    ASSERT_TRUE(runCommand(Driver + " " + Flags + " 2>/dev/null", Local))
        << Flags;
    ASSERT_TRUE(runCommand(Driver + " " + Flags + " --server-url=" + Url +
                               " 2>/dev/null",
                           Routed))
        << Flags;
    EXPECT_EQ(Local, Routed) << "output diverged through the router for: "
                             << Flags;
  }

  Front.stop();
  Accept.join();
  R.shutdown();
}
#endif // IPCP_DRIVER_PATH
#endif // IPCP_SERVE_PATH
