//===- tests/VmTests.cpp - Bytecode compiler and VM unit tests ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the bytecode pipeline (exec/Bytecode.h, exec/Vm.h)
/// against the normative AST interpreter, on hand-written minimal
/// programs: every structured trap (divide-by-zero, array bounds, step
/// limit, call depth) must come out of both engines with the same kind,
/// location, trace prefix, and final state, and the observation hooks
/// must fire identically. The broad randomized equivalence wall lives
/// in VmDifferentialTests.cpp (check-vm label); these are the fast
/// tier-1 pins.
///
//===----------------------------------------------------------------------===//

#include "exec/BytecodeCompiler.h"
#include "exec/ExecEngine.h"
#include "exec/Vm.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Parse + check once, run under both engines.
struct BothEngines {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  RunResult Ast;
  RunResult Vm;
};

BothEngines runBoth(const std::string &Source,
                    const RunOptions &Opts = RunOptions(),
                    const ExecHooks *AstHooks = nullptr,
                    const ExecHooks *VmHooks = nullptr) {
  BothEngines B;
  DiagnosticEngine Diags;
  B.Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    B.Symbols = Sema::run(*B.Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ProgramRunner AstRun(B.Ctx->program(), B.Symbols, ExecEngine::Ast);
  ProgramRunner VmRun(B.Ctx->program(), B.Symbols, ExecEngine::Vm);
  B.Ast = AstRun.run(Opts, AstHooks);
  B.Vm = VmRun.run(Opts, VmHooks);
  return B;
}

/// Full observable-equality check: status, trap location, PRINT trace,
/// step accounting, READ consumption, and final global/array state.
void expectIdentical(const BothEngines &B) {
  EXPECT_EQ(B.Ast.Status, B.Vm.Status)
      << "ast: " << B.Ast.str() << "\nvm:  " << B.Vm.str();
  EXPECT_EQ(B.Ast.TrapLoc.str(), B.Vm.TrapLoc.str());
  EXPECT_EQ(B.Ast.Prints, B.Vm.Prints);
  EXPECT_EQ(B.Ast.Steps, B.Vm.Steps);
  EXPECT_EQ(B.Ast.ReadsConsumed, B.Vm.ReadsConsumed);
  EXPECT_EQ(B.Ast.FinalGlobals, B.Vm.FinalGlobals);
  EXPECT_EQ(B.Ast.FinalGlobalArrays, B.Vm.FinalGlobalArrays);
}

TEST(VmTest, PrintArithmeticParity) {
  BothEngines B = runBoth("proc main()\n"
                          "  print 2 + 3 * 4\n"
                          "  print (2 + 3) * 4\n"
                          "  print 7 / 2\n"
                          "  print 7 % 2\n"
                          "  print -7 / 2\n"
                          "  print (1 < 2) and (2 < 1)\n"
                          "  print (1 < 2) or (2 < 1)\n"
                          "  print not (1 < 2)\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  EXPECT_EQ(B.Vm.Prints, (std::vector<int64_t>{14, 20, 3, 1, -3, 0, 1, 0}));
}

TEST(VmTest, TrapParityDivideByZero) {
  for (const char *Expr : {"10 / (x - x)", "10 % (x - x)"}) {
    BothEngines B = runBoth(std::string("proc main()\n"
                                        "  integer x\n"
                                        "  x = 3\n"
                                        "  print 1\n"
                                        "  print ") +
                            Expr + "\nend\n");
    expectIdentical(B);
    EXPECT_EQ(B.Vm.Status, RunStatus::DivideByZero);
    EXPECT_EQ(B.Vm.Prints, (std::vector<int64_t>{1}));
    EXPECT_TRUE(B.Vm.TrapLoc.isValid());
  }
}

TEST(VmTest, TrapParityArrayBoundsRead) {
  for (const char *Idx : {"0", "5", "-3"}) {
    BothEngines B = runBoth(std::string("proc main()\n"
                                        "  array a(4)\n"
                                        "  print a(1)\n"
                                        "  print a(") +
                            Idx + ")\nend\n");
    expectIdentical(B);
    EXPECT_EQ(B.Vm.Status, RunStatus::ArrayBounds);
  }
}

TEST(VmTest, TrapParityArrayBoundsWriteGlobalArray) {
  // The index is evaluated and checked before the value: the PRINT
  // inside the value expression must not run.
  BothEngines B = runBoth("array g(3)\n"
                          "proc main()\n"
                          "  integer i\n"
                          "  i = 4\n"
                          "  g(i) = 1 / 0\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::ArrayBounds);
}

TEST(VmTest, TrapParityStepLimit) {
  RunOptions RO;
  RO.Limits.MaxSteps = 100;
  BothEngines B = runBoth("proc main()\n"
                          "  integer n\n"
                          "  while (1 == 1)\n"
                          "    n = n + 1\n"
                          "    print n\n"
                          "  end while\n"
                          "end\n",
                          RO);
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::StepLimit);
  EXPECT_EQ(B.Vm.Steps, 100u);
}

TEST(VmTest, TrapParityCallDepth) {
  RunOptions RO;
  RO.Limits.MaxCallDepth = 20;
  BothEngines B = runBoth("proc main()\n"
                          "  call down(1)\n"
                          "end\n"
                          "proc down(n)\n"
                          "  print n\n"
                          "  call down(n + 1)\n"
                          "end\n",
                          RO);
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::CallDepthLimit);
  // main is depth 1; 19 activations of down printed.
  EXPECT_EQ(B.Vm.Prints.size(), 19u);
}

TEST(VmTest, DepthIsCheckedBeforeArgumentEvaluation) {
  // The interpreter checks call depth on invoke() entry, before any
  // actual is evaluated; a trapping argument expression must lose to
  // the depth trap in both engines.
  RunOptions RO;
  RO.Limits.MaxCallDepth = 1;
  BothEngines B = runBoth("proc main()\n"
                          "  call p(1 / 0)\n"
                          "end\n"
                          "proc p(x)\n"
                          "  print x\n"
                          "end\n",
                          RO);
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::CallDepthLimit);
}

TEST(VmTest, ZeroLimitsEdgeCases) {
  RunOptions NoSteps;
  NoSteps.Limits.MaxSteps = 0;
  BothEngines B1 = runBoth("proc main()\n  print 1\nend\n", NoSteps);
  expectIdentical(B1);
  EXPECT_EQ(B1.Vm.Status, RunStatus::StepLimit);
  EXPECT_EQ(B1.Vm.Steps, 0u);

  RunOptions NoDepth;
  NoDepth.Limits.MaxCallDepth = 0;
  BothEngines B2 = runBoth("global g = 7\nproc main()\n  print 1\nend\n",
                           NoDepth);
  expectIdentical(B2);
  EXPECT_EQ(B2.Vm.Status, RunStatus::CallDepthLimit);
  EXPECT_FALSE(B2.Vm.TrapLoc.isValid());
  // Global initializers applied before the entry depth check are part
  // of the final state in both engines.
  EXPECT_EQ(B2.Vm.FinalGlobals, B2.Ast.FinalGlobals);
}

TEST(VmTest, ByReferenceBindingParity) {
  BothEngines B = runBoth("global g0\n"
                          "proc main()\n"
                          "  integer v0, r\n"
                          "  v0 = 3\n"
                          "  call both(v0, v0)\n"
                          "  print v0\n"
                          "  call bump(v0 + 0)\n"
                          "  print v0\n"
                          "  call gmod(g0)\n"
                          "  print g0\n"
                          "  r = 0\n"
                          "  call chain(r)\n"
                          "  print r\n"
                          "end\n"
                          "proc both(a, b)\n"
                          "  a = a + 10\n"
                          "  print b\n"
                          "end\n"
                          "proc bump(x)\n"
                          "  x = x + 100\n"
                          "end\n"
                          "proc gmod(p)\n"
                          "  p = p + 5\n"
                          "end\n"
                          "proc chain(y)\n"
                          "  call gmod(y)\n"
                          "  call gmod(y)\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  // both(v0, v0): writing a is visible through b (one cell, two names);
  // bump(v0 + 0) binds a by-value temp; chain passes its formal on.
  EXPECT_EQ(B.Vm.Prints, (std::vector<int64_t>{13, 13, 13, 5, 10}));
}

TEST(VmTest, DoLoopSemanticsParity) {
  // Non-constant negative step still compares ascending (syntactic
  // constancy decides the direction); bounds are captured before the
  // loop; the body may overwrite the loop variable.
  BothEngines B = runBoth("proc main()\n"
                          "  integer i, s, n\n"
                          "  s = -1\n"
                          "  do i = 3, 1, s\n"
                          "    print i\n"
                          "  end do\n"
                          "  print i\n"
                          "  do i = 3, 1, -1\n"
                          "    print i\n"
                          "  end do\n"
                          "  print i\n"
                          "  n = 3\n"
                          "  do i = 1, n\n"
                          "    n = 100\n"
                          "    print i\n"
                          "  end do\n"
                          "  do i = 1, 4, 2\n"
                          "    print i\n"
                          "  end do\n"
                          "  print i\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  EXPECT_EQ(B.Vm.Prints,
            (std::vector<int64_t>{3, 3, 2, 1, 0, 1, 2, 3, 1, 3, 5}));
}

TEST(VmTest, ReadStreamParity) {
  for (uint64_t Seed : {0ull, 1ull, 7ull, 123456789ull}) {
    RunOptions RO;
    RO.ReadSeed = Seed;
    BothEngines B = runBoth("proc main()\n"
                            "  integer a, b, c\n"
                            "  read a\n"
                            "  read b\n"
                            "  read c\n"
                            "  print a\n"
                            "  print b\n"
                            "  print c\n"
                            "end\n",
                            RO);
    expectIdentical(B);
    EXPECT_EQ(B.Vm.ReadsConsumed, 3u);
    EXPECT_EQ(B.Vm.Prints[0], readStreamValue(Seed, 0));
    EXPECT_EQ(B.Vm.Prints[2], readStreamValue(Seed, 2));
  }
}

TEST(VmTest, FinalStateParity) {
  BothEngines B = runBoth("global g = 5\n"
                          "global h\n"
                          "array ga(3)\n"
                          "proc main()\n"
                          "  integer i\n"
                          "  array la(2)\n"
                          "  do i = 1, 3\n"
                          "    ga(i) = i * 10\n"
                          "  end do\n"
                          "  la(1) = 99\n"
                          "  h = g + la(1)\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  ASSERT_EQ(B.Vm.FinalGlobalArrays.size(), 1u);
  EXPECT_EQ(B.Vm.FinalGlobalArrays[0].second,
            (std::vector<int64_t>{10, 20, 30}));
}

TEST(VmTest, HookParityVarUseAndProcEntry) {
  const std::string Source = "global g = 2\n"
                             "proc main()\n"
                             "  integer v\n"
                             "  v = g + 3\n"
                             "  call p(v, v * 2)\n"
                             "end\n"
                             "proc p(a, b)\n"
                             "  print a + b + g\n"
                             "end\n";
  // Record every OnVarUse (id, value) and, on each OnProcEntry, the
  // resolved value (or absence) of every symbol in the table.
  struct Trace {
    std::vector<std::pair<ExprId, int64_t>> Uses;
    std::vector<std::pair<ProcId, std::vector<std::pair<bool, int64_t>>>>
        Entries;
  };
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

  auto trace = [&](ExecEngine E) {
    Trace T;
    ExecHooks Hooks;
    Hooks.OnVarUse = [&](ExprId Id, int64_t V) { T.Uses.push_back({Id, V}); };
    Hooks.OnProcEntry =
        [&](ProcId P,
            const std::function<const int64_t *(SymbolId)> &Lookup) {
          std::vector<std::pair<bool, int64_t>> Cells;
          for (SymbolId S = 0; S != Symbols.size(); ++S) {
            const int64_t *Cell = Lookup(S);
            Cells.push_back({Cell != nullptr, Cell ? *Cell : 0});
          }
          T.Entries.push_back({P, std::move(Cells)});
        };
    ProgramRunner R(Ctx->program(), Symbols, E);
    RunResult Res = R.run(RunOptions(), &Hooks);
    EXPECT_EQ(Res.Status, RunStatus::Ok);
    return T;
  };

  Trace Ast = trace(ExecEngine::Ast);
  Trace Vm = trace(ExecEngine::Vm);
  EXPECT_EQ(Ast.Uses, Vm.Uses);
  EXPECT_EQ(Ast.Entries, Vm.Entries);
  // Sanity: v = g + 3 reads g; call p(v, v*2) reads v twice (the
  // by-value actual) but NOT the by-reference actual v; p reads a, b, g.
  EXPECT_EQ(Vm.Uses.size(), 5u);
  EXPECT_EQ(Vm.Entries.size(), 2u);
}

TEST(VmTest, DisassemblySmoke) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram("global g = 1\n"
                          "proc main()\n"
                          "  integer i\n"
                          "  do i = 1, 3\n"
                          "    g = g * 2\n"
                          "  end do\n"
                          "  call p(g)\n"
                          "end\n"
                          "proc p(x)\n"
                          "  print x\n"
                          "end\n",
                          Diags);
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  CodeProgram CP = compileProgram(Ctx->program(), Symbols);

  ASSERT_EQ(CP.Procs.size(), 2u);
  EXPECT_EQ(CP.Procs[CP.Entry].Name, "main");
  EXPECT_FALSE(CP.Procs[CP.Entry].Code.empty());
  EXPECT_GE(CP.MaxStack, 2u);
  EXPECT_EQ(CP.GlobalSyms.size(), 1u);
  ASSERT_EQ(CP.GlobalInits.size(), 1u);
  EXPECT_EQ(CP.GlobalInits[0].second, 1);

  std::string Dis = CP.str();
  EXPECT_NE(Dis.find("proc main"), std::string::npos);
  EXPECT_NE(Dis.find("call"), std::string::npos);
  EXPECT_NE(Dis.find("step"), std::string::npos);

  // The compiled code runs standalone through a bare Vm too.
  Vm Machine(CP);
  RunResult R = Machine.run(RunOptions());
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{8}));
}

TEST(VmTest, LocalArraysFreshPerActivation) {
  BothEngines B = runBoth("proc main()\n"
                          "  call p(1)\n"
                          "  call p(2)\n"
                          "end\n"
                          "proc p(n)\n"
                          "  array a(3)\n"
                          "  print a(n)\n"
                          "  a(n) = n\n"
                          "  print a(n)\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  EXPECT_EQ(B.Vm.Prints, (std::vector<int64_t>{0, 1, 0, 2}));
}

TEST(VmTest, RecursionParity) {
  BothEngines B = runBoth("proc main()\n"
                          "  integer r\n"
                          "  r = 1\n"
                          "  call fact(6, r)\n"
                          "  print r\n"
                          "end\n"
                          "proc fact(n, acc)\n"
                          "  if (n <= 1) then\n"
                          "    return\n"
                          "  end if\n"
                          "  acc = acc * n\n"
                          "  call fact(n - 1, acc)\n"
                          "end\n");
  expectIdentical(B);
  EXPECT_EQ(B.Vm.Status, RunStatus::Ok);
  EXPECT_EQ(B.Vm.Prints, (std::vector<int64_t>{720}));
}

} // namespace
