//===- tests/ProgramGenTests.cpp - Workload idiom matrix tests ------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The suite calibration (DESIGN.md §4) rests on each ProgramGen idiom
// contributing an exactly-known count to each analyzer configuration.
// These tests pin that visibility matrix emitter by emitter, so a
// regression in any analysis phase that would silently skew the Table
// 2/3 reproduction fails here with a pointed message first.
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGen.h"

#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace ipcp;

namespace {

/// Substitution counts of one generated program under the seven study
/// configurations.
struct ConfigCounts {
  unsigned Lit = 0;
  unsigned Intra = 0;
  unsigned Pass = 0;
  unsigned Poly = 0;
  unsigned NoRjf = 0;
  unsigned NoMod = 0;
  unsigned IntraOnly = 0;
  unsigned Complete = 0;

  bool operator==(const ConfigCounts &) const = default;
};

std::ostream &operator<<(std::ostream &OS, const ConfigCounts &C) {
  return OS << "{lit=" << C.Lit << " intra=" << C.Intra
            << " pass=" << C.Pass << " poly=" << C.Poly
            << " norjf=" << C.NoRjf << " nomod=" << C.NoMod
            << " intraonly=" << C.IntraOnly
            << " complete=" << C.Complete << "}";
}

unsigned run(const std::string &Source, PipelineOptions Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error << "\n" << Source;
  return R.SubstitutedConstants;
}

ConfigCounts measure(ProgramGen &G) {
  std::string Source = G.render();
  ConfigCounts C;
  PipelineOptions O;
  O.Kind = JumpFunctionKind::Literal;
  C.Lit = run(Source, O);
  O.Kind = JumpFunctionKind::IntraConst;
  C.Intra = run(Source, O);
  O.Kind = JumpFunctionKind::PassThrough;
  C.Pass = run(Source, O);
  O = PipelineOptions();
  C.Poly = run(Source, O);
  O.UseReturnJumpFunctions = false;
  C.NoRjf = run(Source, O);
  O = PipelineOptions();
  O.UseMod = false;
  C.NoMod = run(Source, O);
  O = PipelineOptions();
  O.IntraproceduralOnly = true;
  C.IntraOnly = run(Source, O);
  O = PipelineOptions();
  O.CompletePropagation = true;
  C.Complete = run(Source, O);
  return C;
}

} // namespace

TEST(ProgramGenIdioms, LitDirect) {
  ProgramGen G("t");
  G.litDirect(7, 4);
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{4, 4, 4, 4, 4, 4, 0, 4})) << C;
}

TEST(ProgramGenIdioms, LocalConstHost) {
  ProgramGen G("t");
  G.localConstHost(9, 5);
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{5, 5, 5, 5, 5, 5, 5, 5})) << C;
}

TEST(ProgramGenIdioms, LocalConstInMain) {
  ProgramGen G("t");
  G.localConstInMain(9, 3);
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{3, 3, 3, 3, 3, 3, 3, 3})) << C;
}

TEST(ProgramGenIdioms, GlobalAcrossCall) {
  ProgramGen G("t");
  G.globalAcrossCall(11, 6);
  ConfigCounts C = measure(G);
  // Everything but no-MOD (the spacer kills the global there).
  EXPECT_EQ(C, (ConfigCounts{6, 6, 6, 6, 6, 0, 6, 6})) << C;
}

TEST(ProgramGenIdioms, GlobalImplicit) {
  ProgramGen G("t");
  G.globalImplicit(13, 4);
  ConfigCounts C = measure(G);
  // Needs gcp over globals (not literal) and MOD; not intraprocedural.
  EXPECT_EQ(C, (ConfigCounts{0, 4, 4, 4, 4, 0, 0, 4})) << C;
}

TEST(ProgramGenIdioms, GlobalImplicitDirect) {
  ProgramGen G("t");
  G.globalImplicitDirect(13, 4);
  ConfigCounts C = measure(G);
  // The assignment immediately precedes the call: survives no-MOD.
  EXPECT_EQ(C, (ConfigCounts{0, 4, 4, 4, 4, 4, 0, 4})) << C;
}

TEST(ProgramGenIdioms, PassChain) {
  ProgramGen G("t");
  G.passChain(17, 2, 5);
  ConfigCounts C = measure(G);
  // Inner uses need pass-through+; the intermediate's argument use is
  // visible to every MOD-aware configuration (its VAL comes from the
  // literal first edge).
  EXPECT_EQ(C, (ConfigCounts{1, 1, 6, 6, 6, 5, 0, 6})) << C;
}

TEST(ProgramGenIdioms, PassChainGlobal) {
  ProgramGen G("t");
  G.passChainGlobal(19, 2, 5);
  ConfigCounts C = measure(G);
  // main's argument use of the global counts everywhere MOD-aware
  // (incl. intra-only); the chain itself needs pass-through+ and dies
  // without MOD (the spacer kills the global first).
  EXPECT_EQ(C, (ConfigCounts{1, 2, 7, 7, 7, 0, 1, 7})) << C;
}

TEST(ProgramGenIdioms, RjfCallerUse) {
  ProgramGen G("t");
  G.rjfCallerUse(23, 3);
  ConfigCounts C = measure(G);
  // Requires return jump functions; the leaf setter's RJF survives even
  // worst-case kills.
  EXPECT_EQ(C, (ConfigCounts{3, 3, 3, 3, 0, 3, 0, 3})) << C;
}

TEST(ProgramGenIdioms, RjfForwarded) {
  ProgramGen G("t");
  G.rjfForwarded(29, 3);
  ConfigCounts C = measure(G);
  // The forwarded value needs gcp (not literal) on top of the RJF; the
  // caller-side argument use counts under the MOD-aware RJF
  // configurations but is excluded under no-MOD (worst-case kills make
  // it a by-reference actual the callee may modify).
  EXPECT_EQ(C, (ConfigCounts{1, 4, 4, 4, 0, 3, 0, 4})) << C;
}

TEST(ProgramGenIdioms, RjfGlobalInit) {
  ProgramGen G("t");
  G.rjfGlobalInit(31, {4, 6});
  ConfigCounts C = measure(G);
  // The ocean idiom: dies without return jump functions; without MOD
  // only the first phase survives (the phases are non-leaf).
  EXPECT_EQ(C, (ConfigCounts{0, 10, 10, 10, 0, 4, 0, 10})) << C;
}

TEST(ProgramGenIdioms, DeadBranchExposed) {
  ProgramGen G("t");
  G.deadBranchExposed(37, 5);
  ConfigCounts C = measure(G);
  // Two uses (guard + argument) under every seeded MOD configuration;
  // no-MOD loses the by-ref argument; complete propagation folds the
  // guard away (-1) and exposes the five consumer uses (+5).
  EXPECT_EQ(C, (ConfigCounts{0, 2, 2, 2, 2, 1, 0, 6})) << C;
}

TEST(ProgramGenIdioms, PolyShapedArgCountsNothing) {
  ProgramGen G("t");
  G.polyShapedArg();
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{0, 0, 0, 0, 0, 0, 0, 0})) << C;
}

TEST(ProgramGenIdioms, FillersCountNothing) {
  ProgramGen G("t");
  G.fillerProc(40);
  G.fillerInMain(20);
  G.fillerChain(3, 15);
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{0, 0, 0, 0, 0, 0, 0, 0})) << C;
}

TEST(ProgramGenIdioms, PaddingNeverAddsCounts) {
  ProgramGen Bare("t");
  Bare.litDirect(7, 4);
  Bare.globalAcrossCall(11, 6);
  Bare.rjfGlobalInit(31, {4, 6});
  ConfigCounts Unpadded = measure(Bare);

  ProgramGen Padded("t");
  Padded.setMinProcLines(40);
  Padded.litDirect(7, 4);
  Padded.globalAcrossCall(11, 6);
  Padded.rjfGlobalInit(31, {4, 6});
  ConfigCounts WithPadding = measure(Padded);

  EXPECT_EQ(Unpadded, WithPadding) << WithPadding;
}

//===----------------------------------------------------------------------===//
// RandomProgram grammar-coverage knobs
//===----------------------------------------------------------------------===//

namespace {

std::string knobProgram(uint64_t Seed, bool While, bool Arrays,
                        bool ReadAny, bool Alias) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.AllowWhile = While;
  Spec.AllowArrays = Arrays;
  Spec.ReadAnyScalar = ReadAny;
  Spec.AllowAliasingCalls = Alias;
  return generateRandomProgram(Spec);
}

bool parsesAndChecks(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    Sema::run(*Ctx, Diags);
  return !Diags.hasErrors();
}

/// True when some "read <var>" line targets a non-local (globals are
/// g*, formals p*; locals are v*).
bool readsNonLocal(const std::string &Source) {
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t At = Line.find("read ");
    if (At == std::string::npos)
      continue;
    char First = Line[At + 5];
    if (First == 'g' || First == 'p')
      return true;
  }
  return false;
}

constexpr uint64_t SweepEnd = 31; // Seeds 1..30.

} // namespace

TEST(RandomProgramKnobs, WhileLoopsAppearExactlyWhenEnabled) {
  bool Seen = false;
  for (uint64_t S = 1; S != SweepEnd; ++S) {
    Seen |= knobProgram(S, true, true, true, true).find("while (") !=
            std::string::npos;
    EXPECT_EQ(knobProgram(S, false, true, true, true).find("while ("),
              std::string::npos);
  }
  EXPECT_TRUE(Seen);
}

TEST(RandomProgramKnobs, ArraysAppearExactlyWhenEnabled) {
  bool SawDecl = false;
  bool SawWrite = false;
  for (uint64_t S = 1; S != SweepEnd; ++S) {
    std::string On = knobProgram(S, true, true, true, true);
    SawDecl |= On.find("array ") != std::string::npos;
    // An element assignment: "ga(" or "la(" at the start of a statement
    // followed by " = " further down the line.
    std::istringstream In(On);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t At = Line.find_first_not_of(' ');
      if (At == std::string::npos)
        continue;
      if ((Line.compare(At, 3, "ga(") == 0 ||
           Line.compare(At, 3, "la(") == 0) &&
          Line.find(" = ", At) != std::string::npos)
        SawWrite = true;
    }
    EXPECT_EQ(knobProgram(S, true, false, true, true).find("array "),
              std::string::npos);
  }
  EXPECT_TRUE(SawDecl);
  EXPECT_TRUE(SawWrite);
}

TEST(RandomProgramKnobs, ReadTargetsNonLocalsOnlyWhenEnabled) {
  bool Seen = false;
  for (uint64_t S = 1; S != SweepEnd; ++S) {
    Seen |= readsNonLocal(knobProgram(S, true, true, true, true));
    EXPECT_FALSE(readsNonLocal(knobProgram(S, true, true, false, true)));
  }
  EXPECT_TRUE(Seen);
}

TEST(RandomProgramKnobs, AliasingShapesRaiseAliasPairs) {
  // The deliberate aliasing shapes must produce strictly more may-alias
  // pairs across the sweep than the accidental background rate.
  size_t PairsOn = 0;
  size_t PairsOff = 0;
  for (uint64_t S = 1; S != SweepEnd; ++S) {
    PipelineResult On =
        runPipeline(knobProgram(S, true, true, true, true), {});
    PipelineResult Off =
        runPipeline(knobProgram(S, true, true, true, false), {});
    ASSERT_TRUE(On.Ok && Off.Ok);
    PairsOn += On.AliasPairs;
    PairsOff += Off.AliasPairs;
  }
  EXPECT_GT(PairsOn, PairsOff);
}

TEST(RandomProgramKnobs, AllKnobCombinationsStayValid) {
  for (int Mask = 0; Mask != 16; ++Mask)
    for (uint64_t S = 1; S != 9; ++S) {
      std::string Source = knobProgram(S, Mask & 1, Mask & 2, Mask & 4,
                                       Mask & 8);
      EXPECT_TRUE(parsesAndChecks(Source)) << Source;
      PipelineResult R = runPipeline(Source, PipelineOptions());
      EXPECT_TRUE(R.Ok) << R.Error << "\n" << Source;
    }
}

TEST(ProgramGenIdioms, IdiomsComposeAdditively) {
  // Composition is what the calibration relies on: independent idioms in
  // one program contribute the sum of their matrices.
  ProgramGen G("t");
  G.litDirect(7, 4);
  G.localConstHost(9, 5);
  G.globalImplicit(13, 4);
  G.rjfCallerUse(23, 3);
  ConfigCounts C = measure(G);
  EXPECT_EQ(C, (ConfigCounts{4 + 5 + 0 + 3, 4 + 5 + 4 + 3, 4 + 5 + 4 + 3,
                             4 + 5 + 4 + 3, 4 + 5 + 4 + 0, 4 + 5 + 0 + 3,
                             0 + 5 + 0 + 0, 4 + 5 + 4 + 3}))
      << C;
}
