//===- tests/GoldenTableTests.cpp - Table 2/3 snapshot tests --------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Golden snapshots of every Table 2 and Table 3 cell over the 15-program
// extended suite (the 12 paper programs plus the copy-stress families). The paper-alignment tests (WorkloadTests) check the *ordering*
// properties the paper reports; these pin the exact numbers, so any
// analyzer change that moves a cell shows up as a readable table diff
// instead of a distant property failure. Regenerate intentionally with:
//
//   IPCP_REGEN_GOLDEN=1 ./build/tests/ipcp_tests \
//       --gtest_filter='GoldenTable.*'
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

using namespace ipcp;

#ifndef IPCP_TEST_GOLDEN_DIR
#define IPCP_TEST_GOLDEN_DIR "tests/golden"
#endif

namespace {

unsigned substituted(const std::string &Source, const PipelineOptions &Opts,
                     unsigned *DceRounds = nullptr) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  if (DceRounds)
    *DceRounds = R.DceRounds;
  return R.SubstitutedConstants;
}

PipelineOptions withKind(JumpFunctionKind Kind, bool Rjf = true) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  Opts.UseReturnJumpFunctions = Rjf;
  return Opts;
}

/// The precision-tier variants of the polynomial default.
PipelineOptions withFsa() {
  PipelineOptions Opts;
  Opts.FlowSensitiveAlias = true;
  return Opts;
}

PipelineOptions withOgvn() {
  PipelineOptions Opts;
  Opts.OptimisticVn = true;
  return Opts;
}

/// The copy-tier variants: the copy lattice over the pass-through and
/// polynomial base kinds (the suite runner's "copy" / "poly-copy").
PipelineOptions withCopy(JumpFunctionKind Kind) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  Opts.CopyPropagation = true;
  return Opts;
}

/// Renders the Table 2 columns: the four jump-function kinds with
/// return jump functions, polynomial and pass-through without, the
/// precision tier (flow-sensitive aliasing, optimistic numbering), and
/// the copy tier (pass-through and polynomial with the copy lattice).
std::string renderTable2() {
  std::ostringstream OS;
  OS << "# program poly pass intra literal poly-norjf pass-norjf"
        " poly-fsa poly-ogvn copy poly-copy\n";
  for (const WorkloadProgram &P : extendedSuite()) {
    OS << P.Name;
    OS << ' ' << substituted(P.Source, withKind(JumpFunctionKind::Polynomial));
    OS << ' ' << substituted(P.Source, withKind(JumpFunctionKind::PassThrough));
    OS << ' ' << substituted(P.Source, withKind(JumpFunctionKind::IntraConst));
    OS << ' ' << substituted(P.Source, withKind(JumpFunctionKind::Literal));
    OS << ' '
       << substituted(P.Source,
                      withKind(JumpFunctionKind::Polynomial, false));
    OS << ' '
       << substituted(P.Source,
                      withKind(JumpFunctionKind::PassThrough, false));
    OS << ' ' << substituted(P.Source, withFsa());
    OS << ' ' << substituted(P.Source, withOgvn());
    OS << ' '
       << substituted(P.Source, withCopy(JumpFunctionKind::PassThrough));
    OS << ' '
       << substituted(P.Source, withCopy(JumpFunctionKind::Polynomial));
    OS << '\n';
  }
  return OS.str();
}

/// Renders the Table 3 columns: polynomial without MOD, the Table 2
/// default (with MOD) for reference, complete propagation with its DCE
/// round count, and the intraprocedural baseline.
std::string renderTable3() {
  std::ostringstream OS;
  OS << "# program nomod withmod complete dce-rounds intra-only\n";
  for (const WorkloadProgram &P : extendedSuite()) {
    PipelineOptions NoMod;
    NoMod.UseMod = false;
    PipelineOptions Complete;
    Complete.CompletePropagation = true;
    PipelineOptions IntraOnly;
    IntraOnly.IntraproceduralOnly = true;
    unsigned Rounds = 0;
    OS << P.Name;
    OS << ' ' << substituted(P.Source, NoMod);
    OS << ' ' << substituted(P.Source, PipelineOptions());
    OS << ' ' << substituted(P.Source, Complete, &Rounds);
    OS << ' ' << Rounds;
    OS << ' ' << substituted(P.Source, IntraOnly);
    OS << '\n';
  }
  return OS.str();
}

/// Line-by-line diff of two table renderings, readable in test output.
std::string diffTables(const std::string &Want, const std::string &Got) {
  std::istringstream W(Want), G(Got);
  std::string WLine, GLine, Out;
  while (true) {
    bool HaveW = bool(std::getline(W, WLine));
    bool HaveG = bool(std::getline(G, GLine));
    if (!HaveW && !HaveG)
      break;
    if (!HaveW)
      Out += "  + " + GLine + "\n";
    else if (!HaveG)
      Out += "  - " + WLine + "\n";
    else if (WLine != GLine)
      Out += "  - " + WLine + "\n  + " + GLine + "\n";
  }
  return Out;
}

void checkAgainstGolden(const std::string &File, const std::string &Got) {
  std::string Path = std::string(IPCP_TEST_GOLDEN_DIR) + "/" + File;
  if (std::getenv("IPCP_REGEN_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Got;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden file " << Path
                  << " (run with IPCP_REGEN_GOLDEN=1 to create it)";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Want = Buf.str();
  EXPECT_EQ(Want, Got)
      << "table cells moved (-golden, +current):\n" << diffTables(Want, Got)
      << "regenerate intentionally with IPCP_REGEN_GOLDEN=1";
}

} // namespace

TEST(GoldenTable, Table2CellsMatchSnapshot) {
  checkAgainstGolden("table2.golden", renderTable2());
}

TEST(GoldenTable, Table3CellsMatchSnapshot) {
  checkAgainstGolden("table3.golden", renderTable3());
}

TEST(GoldenTable, PrecisionColumnsNeverRegressAndSomewhereGain) {
  // Per cell, each precision upgrade must count at least what the plain
  // polynomial configuration counts (the suite programs have no
  // DCE-style count anomalies), and across the suite each must win
  // strictly somewhere — otherwise the new columns are dead weight.
  unsigned FsaGain = 0, OgvnGain = 0;
  for (const WorkloadProgram &P : extendedSuite()) {
    unsigned Poly =
        substituted(P.Source, withKind(JumpFunctionKind::Polynomial));
    unsigned Fsa = substituted(P.Source, withFsa());
    unsigned Ogvn = substituted(P.Source, withOgvn());
    EXPECT_GE(Fsa, Poly) << P.Name << ": flow-sensitive aliasing lost "
                         << "constants the baseline had";
    EXPECT_GE(Ogvn, Poly) << P.Name << ": optimistic numbering lost "
                          << "constants the baseline had";
    FsaGain += Fsa - std::min(Fsa, Poly);
    OgvnGain += Ogvn - std::min(Ogvn, Poly);
  }
  EXPECT_GT(FsaGain, 0u);
  EXPECT_GT(OgvnGain, 0u);
}

TEST(GoldenTable, CopyColumnsNeverRegressAndEveryFamilyGains) {
  // Per cell, each copy column must count at least its base column
  // (loads the lattice resolves only add constants on these programs),
  // and the gain must land where it is designed to: every copy-stress
  // family wins strictly under both base kinds. The classic 12 programs
  // keep their pre-copy cells byte-identical with the flag off — that is
  // exactly what the table2 snapshot rows pin.
  unsigned FamilyGainPass = 0, FamilyGainPoly = 0;
  for (const WorkloadProgram &P : extendedSuite()) {
    unsigned Pass =
        substituted(P.Source, withKind(JumpFunctionKind::PassThrough));
    unsigned Poly =
        substituted(P.Source, withKind(JumpFunctionKind::Polynomial));
    unsigned Copy =
        substituted(P.Source, withCopy(JumpFunctionKind::PassThrough));
    unsigned PolyCopy =
        substituted(P.Source, withCopy(JumpFunctionKind::Polynomial));
    EXPECT_GE(Copy, Pass) << P.Name << ": the copy lattice lost "
                          << "constants the pass-through baseline had";
    EXPECT_GE(PolyCopy, Poly) << P.Name << ": the copy lattice lost "
                              << "constants the polynomial baseline had";
    bool IsFamily = false;
    for (const WorkloadProgram &F : copyStressPrograms())
      IsFamily |= F.Name == P.Name;
    if (IsFamily) {
      FamilyGainPass += Copy - std::min(Copy, Pass);
      FamilyGainPoly += PolyCopy - std::min(PolyCopy, Poly);
      EXPECT_GT(Copy, Pass) << P.Name;
      EXPECT_GT(PolyCopy, Poly) << P.Name;
    }
  }
  EXPECT_GT(FamilyGainPass, 0u);
  EXPECT_GT(FamilyGainPoly, 0u);
}
