//===- tests/SolverTests.cpp - ipcp/Solver unit tests ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Solver.h"

#include "TestHelpers.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

struct Solved {
  FullAnalysis A;
  ProgramJumpFunctions Jfs;
  SolveResult R;
};

Solved solve(const std::string &Source,
             JumpFunctionKind Kind = JumpFunctionKind::Polynomial,
             SolverStrategy Strategy = SolverStrategy::Worklist) {
  Solved S;
  S.A = analyze(Source);
  JumpFunctionOptions Opts;
  Opts.Kind = Kind;
  S.Jfs = buildJumpFunctions(S.A.M, S.A.Symbols, *S.A.CG, S.A.MRI.get(),
                             Opts);
  S.R = solveConstants(S.A.Symbols, *S.A.CG, S.Jfs, Strategy);
  return S;
}

} // namespace

TEST(Solver, SingleEdgeConstant) {
  Solved S = solve(
      "proc main()\n  call f(5)\nend\nproc f(x)\n  print x\nend\n");
  LatticeValue V = S.R.valueOf(S.A.proc("f"), S.A.symbolIn("f", "x"));
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 5);
}

TEST(Solver, AgreeingCallSitesStayConstant) {
  Solved S = solve(R"(proc main()
  call f(5)
  call f(5)
end
proc f(x)
  print x
end
)");
  EXPECT_TRUE(
      S.R.valueOf(S.A.proc("f"), S.A.symbolIn("f", "x")).isConst());
}

TEST(Solver, ConflictingCallSitesMeetToBottom) {
  Solved S = solve(R"(proc main()
  call f(5)
  call f(6)
end
proc f(x)
  print x
end
)");
  EXPECT_TRUE(
      S.R.valueOf(S.A.proc("f"), S.A.symbolIn("f", "x")).isBottom());
}

TEST(Solver, PropagatesThroughChains) {
  Solved S = solve(R"(proc main()
  call a(9)
end
proc a(x)
  call b(x)
end
proc b(y)
  call c(y + 1)
end
proc c(z)
  print z
end
)");
  LatticeValue V = S.R.valueOf(S.A.proc("c"), S.A.symbolIn("c", "z"));
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 10);
}

TEST(Solver, NeverCalledProcsKeepTop) {
  Solved S = solve(R"(proc main()
end
proc orphan(x)
  print x
end
)");
  // "x retains the value T only if the procedure containing x is never
  // called" (paper §2).
  EXPECT_TRUE(S.R.valueOf(S.A.proc("orphan"), S.A.symbolIn("orphan", "x"))
                  .isTop());
}

TEST(Solver, EntryGlobalsStartBottom) {
  Solved S = solve("global g\nproc main()\n  print g\nend\n");
  EXPECT_TRUE(S.R.valueOf(S.A.proc("main"), S.A.symbol("g")).isBottom());
}

TEST(Solver, GlobalInitializerPrologueFeedsCallees) {
  Solved S = solve(R"(global g = 31
proc main()
  call f()
end
proc f()
  print g
end
)");
  LatticeValue V = S.R.valueOf(S.A.proc("f"), S.A.symbol("g"));
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 31);
}

TEST(Solver, RecursionConvergesToBottomOnVaryingParam) {
  Solved S = solve(R"(proc main()
  call count(10)
end
proc count(n)
  if (n > 0) then
    call count(n - 1)
  end if
end
)");
  EXPECT_TRUE(S.R.valueOf(S.A.proc("count"), S.A.symbolIn("count", "n"))
                  .isBottom());
}

TEST(Solver, RecursionKeepsInvariantConstant) {
  Solved S = solve(R"(proc main()
  call walk(10, 3)
end
proc walk(n, stride)
  if (n > 0) then
    call walk(n - stride, stride)
  end if
end
)");
  // stride is passed through unchanged around the cycle.
  LatticeValue V =
      S.R.valueOf(S.A.proc("walk"), S.A.symbolIn("walk", "stride"));
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 3);
}

TEST(Solver, ConstantsSetIsSortedAndFiltered) {
  Solved S = solve(R"(global g
proc main()
  g = 2
  call f(1)
end
proc f(x)
  print x + g
end
)");
  auto Constants = S.R.constants(S.A.proc("f"));
  ASSERT_EQ(Constants.size(), 2u);
  EXPECT_TRUE(std::is_sorted(Constants.begin(), Constants.end()));
}

TEST(Solver, CountsEffort) {
  Solved S = solve(
      "proc main()\n  call f(5)\nend\nproc f(x)\n  print x\nend\n");
  EXPECT_GT(S.R.ProcVisits, 0u);
  EXPECT_GT(S.R.JfEvaluations, 0u);
  EXPECT_GT(S.R.CellLowerings, 0u);
}

TEST(Solver, CellLoweringsRespectLatticeDepth) {
  // Each cell lowers at most twice (paper §2), bounding total changes.
  for (const WorkloadProgram &W : benchmarkSuite()) {
    Solved S = solve(W.Source);
    size_t Cells = 0;
    for (const auto &Map : S.R.Val)
      Cells += Map.size();
    EXPECT_LE(S.R.CellLowerings, 2 * Cells) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Strategy equivalence and effort ordering over the whole suite.
//===----------------------------------------------------------------------===//

class SolverSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SolverSuiteTest, StrategiesAgreeAndWorklistDoesLessWork) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  Solved Wl = solve(W.Source, JumpFunctionKind::Polynomial,
                    SolverStrategy::Worklist);
  Solved Rr = solve(W.Source, JumpFunctionKind::Polynomial,
                    SolverStrategy::RoundRobin);
  Solved Bg = solve(W.Source, JumpFunctionKind::Polynomial,
                    SolverStrategy::BindingGraph);
  for (ProcId P = 0; P != Wl.A.CG->numProcs(); ++P) {
    EXPECT_EQ(Wl.R.constants(P), Rr.R.constants(P)) << W.Name;
    EXPECT_EQ(Wl.R.constants(P), Bg.R.constants(P)) << W.Name;
  }
  EXPECT_LE(Wl.R.JfEvaluations, Rr.R.JfEvaluations) << W.Name;
  // The binding graph re-evaluates a jump function only when one of its
  // support cells lowers, so its evaluation count obeys the paper's
  // §3.1.5 bound: one initial pass over every edge plus at most two
  // lowerings per support entry (the lattice depth).
  size_t Edges = 0, SupportUses = 0;
  for (const auto &Sites : Bg.Jfs.PerSite)
    for (const auto &Site : Sites) {
      Edges += Site.Args.size() + Site.Globals.size();
      for (const auto &J : Site.Args)
        SupportUses += J.support().size();
      for (const auto &J : Site.Globals)
        SupportUses += J.support().size();
    }
  EXPECT_LE(Bg.R.JfEvaluations, Edges + 2 * SupportUses) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SolverSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
