//===- tests/OracleFuzzTests.cpp - Seeded oracle fuzzing ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation at scale: generate hundreds of seeded random
/// programs and run the oracle over every analyzer configuration — all
/// four jump-function kinds, MOD on/off, complete propagation (DCE)
/// on/off. Every trace must match the reference interpreter and every
/// claimed constant must hold at runtime. This is the ground-truth
/// check no differential test can provide: it catches the analyzer
/// being consistently wrong.
///
/// Built as its own binary (ipcp_oracle_tests) under the 'check-oracle'
/// CTest label so the long sweep can be scheduled separately from the
/// tier-1 suite.
///
//===----------------------------------------------------------------------===//

#include "exec/Oracle.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

/// The 16 configurations the acceptance sweep covers:
/// {literal, intra, pass, poly} x {MOD on/off} x {DCE on/off}.
std::vector<PipelineOptions> allConfigs() {
  std::vector<PipelineOptions> Configs;
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial})
    for (bool Mod : {false, true})
      for (bool Complete : {false, true}) {
        PipelineOptions Opts;
        Opts.Kind = Kind;
        Opts.UseMod = Mod;
        Opts.CompletePropagation = Complete;
        Configs.push_back(Opts);
      }
  return Configs;
}

std::string configName(const PipelineOptions &Opts) {
  std::string Name = jumpFunctionKindName(Opts.Kind);
  Name += Opts.UseMod ? "+mod" : "-mod";
  Name += Opts.CompletePropagation ? "+dce" : "-dce";
  return Name;
}

/// Validates \p Source under every configuration. The inliner and
/// cloning transforms are checked once per program (they do not depend
/// on the analyzer configuration) rather than 16 times.
void validateAllConfigs(const std::string &Source) {
  bool CheckTransforms = true;
  for (const PipelineOptions &Config : allConfigs()) {
    OracleOptions Opts;
    Opts.Pipeline = Config;
    Opts.Limits.MaxSteps = 50000;
    Opts.CheckInliner = CheckTransforms;
    Opts.CheckCloning = CheckTransforms;
    CheckTransforms = false;
    OracleResult R = validateTranslation(Source, Opts);
    EXPECT_TRUE(R.Ok) << configName(Config) << ": " << R.Error;
    EXPECT_EQ(R.TraceDivergences, 0u) << configName(Config);
    EXPECT_EQ(R.ConstantMismatches, 0u) << configName(Config);
    EXPECT_GT(R.TraceComparisons, 0u) << configName(Config);
  }
}

class OracleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleFuzzTest, RandomProgramValidatesUnderEveryConfig) {
  RandomSpec Spec;
  Spec.Seed = GetParam();
  validateAllConfigs(generateRandomProgram(Spec));
}

// 320 fixed program seeds x 16 configurations each (raised from 200
// when the bytecode VM took over oracle execution).
INSTANTIATE_TEST_SUITE_P(Seeds, OracleFuzzTest,
                         ::testing::Range<uint64_t>(1, 321));

class OracleRecursiveFuzzTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OracleRecursiveFuzzTest, RecursiveProgramValidates) {
  RandomSpec Spec;
  Spec.Seed = GetParam();
  Spec.AllowRecursion = true;
  validateAllConfigs(generateRandomProgram(Spec));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleRecursiveFuzzTest,
                         ::testing::Range<uint64_t>(1, 49));

class OracleLargeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleLargeFuzzTest, LargerProgramValidates) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 7919; // Decorrelate from the main sweep.
  Spec.Procs = 10;
  Spec.Globals = 5;
  Spec.MaxStmtsPerProc = 16;
  Spec.MaxExprDepth = 4;
  validateAllConfigs(generateRandomProgram(Spec));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleLargeFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

class OracleSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OracleSuiteTest, BenchmarkProgramValidatesUnderEveryConfig) {
  validateAllConfigs(benchmarkSuite()[GetParam()].Source);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, OracleSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

} // namespace
