//===- tests/EndToEndTests.cpp - Whole-analyzer scenarios -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Integration scenarios exercising the full stack the way the paper's
// examples and discussion describe.
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include "workloads/Suite.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

PipelineResult run(const std::string &Source,
                   PipelineOptions Opts = PipelineOptions()) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

/// CONSTANTS(p) as a printable set for matching.
std::string constantsOf(const PipelineResult &R, const std::string &Proc) {
  for (size_t P = 0; P != R.ProcNames.size(); ++P) {
    if (R.ProcNames[P] != Proc)
      continue;
    std::string Out;
    for (const auto &[Name, Value] : R.Constants[P])
      Out += Name + "=" + std::to_string(Value) + ";";
    return Out;
  }
  return "<no such proc>";
}

} // namespace

TEST(EndToEnd, ConstantsFlowDownACallPyramid) {
  PipelineResult R = run(R"(global base
proc main()
  base = 100
  call level1(2)
end
proc level1(k)
  call level2(k * 3)
end
proc level2(m)
  call level3(m + base)
end
proc level3(n)
  print n
end
)");
  EXPECT_EQ(constantsOf(R, "level1"), "base=100;k=2;");
  EXPECT_EQ(constantsOf(R, "level2"), "base=100;m=6;");
  EXPECT_EQ(constantsOf(R, "level3"), "base=100;n=106;");
}

TEST(EndToEnd, MeetAcrossSitesKillsOnlyConflicts) {
  PipelineResult R = run(R"(proc main()
  call work(1, 10)
  call work(2, 10)
end
proc work(a, b)
  print a + b
end
)");
  // a conflicts (1 vs 2); b agrees.
  EXPECT_EQ(constantsOf(R, "work"), "b=10;");
}

TEST(EndToEnd, ReturnJumpFunctionChain) {
  // Two levels of out-parameters: init sets n, wrapper forwards it.
  PipelineResult R = run(R"(proc main()
  integer n
  call init(n)
  call use(n)
end
proc init(o)
  integer t
  t = 5
  o = t * 4
end
proc use(p)
  print p
end
)");
  EXPECT_EQ(constantsOf(R, "use"), "p=20;");
}

TEST(EndToEnd, OceanStyleInitializationRoutine) {
  const char *Source = R"(global nx, ny, nz
proc main()
  call init()
  call phase1()
  call phase2()
end
proc init()
  nx = 64
  ny = 32
  nz = 16
end
proc phase1()
  print nx + ny
end
proc phase2()
  print ny * nz
end
)";
  PipelineResult WithRjf = run(Source);
  EXPECT_EQ(constantsOf(WithRjf, "phase2"), "nx=64;ny=32;nz=16;");

  PipelineOptions NoRjf;
  NoRjf.UseReturnJumpFunctions = false;
  PipelineResult Without = run(Source, NoRjf);
  EXPECT_EQ(constantsOf(Without, "phase2"), "");
  EXPECT_GT(WithRjf.SubstitutedConstants,
            3 * Without.SubstitutedConstants);
}

TEST(EndToEnd, ModMattersAcrossInnocentCalls) {
  const char *Source = R"(global n
proc main()
  n = 8
  call logit()
  call use()
end
proc logit()
  integer t
  read t
  print t
  call logleaf()
end
proc logleaf()
  print 0
end
proc use()
  print n
end
)";
  PipelineResult WithMod = run(Source);
  PipelineOptions NoModOpts;
  NoModOpts.UseMod = false;
  PipelineResult NoMod = run(Source, NoModOpts);
  EXPECT_GT(WithMod.SubstitutedConstants, NoMod.SubstitutedConstants);
}

TEST(EndToEnd, GuardedDebugCodeNeedsCompletePropagation) {
  const char *Source = R"(global verbose
proc main()
  verbose = 0
  call solve()
end
proc solve()
  integer steps
  steps = 40
  if (verbose == 1) then
    read steps
  end if
  call iterate(steps)
end
proc iterate(n)
  print n
end
)";
  PipelineResult Plain = run(Source);
  EXPECT_EQ(constantsOf(Plain, "iterate"), "verbose=0;");

  PipelineOptions CompleteOpts;
  CompleteOpts.CompletePropagation = true;
  PipelineResult Complete = run(Source, CompleteOpts);
  EXPECT_EQ(constantsOf(Complete, "iterate"), "verbose=0;n=40;");
}

TEST(EndToEnd, LoopBoundBecomesKnown) {
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult R = run(R"(global limit
proc main()
  limit = 16
  call kernel()
end
proc kernel()
  integer i
  do i = 1, limit
    print i
  end do
end
)",
                         Opts);
  EXPECT_NE(R.TransformedSource.find("do i = 1, 16"), std::string::npos);
}

TEST(EndToEnd, ValuesReadFromFileNeverBecomeConstant) {
  // Paper §2: "values read from a file may be combined to form a
  // constant that propagates through the program" — the analyzer must
  // not claim them.
  PipelineResult R = run(R"(global cfg
proc main()
  read cfg
  call use(cfg)
end
proc use(x)
  print x
end
)");
  EXPECT_EQ(constantsOf(R, "use"), "");
  EXPECT_EQ(R.SubstitutedConstants, 0u);
}

TEST(EndToEnd, ExpressionActualsShieldCallerVariables) {
  // Passing v+0 creates a by-value temporary: set cannot change v.
  PipelineResult R = run(R"(proc main()
  integer v
  v = 3
  call set(v + 0)
  print v
end
proc set(o)
  o = 99
end
)");
  // v stays 3 at the print: one substitution there plus the use in v+0.
  EXPECT_EQ(R.SubstitutedConstants, 2u);
}

TEST(EndToEnd, RecursiveHelperKeepsInvariantParameters) {
  PipelineResult R = run(R"(proc main()
  call fill(1, 8)
end
proc fill(i, size)
  if (i < size) then
    call fill(i + 1, size)
  end if
end
)");
  EXPECT_EQ(constantsOf(R, "fill"), "size=8;");
}

TEST(EndToEnd, TransformedSourceReanalyzesToAtLeastAsMany) {
  const char *Source = R"(global n
proc main()
  n = 4
  call f(n)
end
proc f(x)
  print x + n
end
)";
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult First = run(Source, Opts);
  PipelineResult Second = run(First.TransformedSource, Opts);
  EXPECT_GE(Second.SubstitutedConstants, 0u);
  // And substitution is idempotent from the second round on.
  PipelineResult Third = run(Second.TransformedSource, Opts);
  EXPECT_EQ(Third.SubstitutedConstants, Second.SubstitutedConstants);
}

class EndToEndSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EndToEndSuiteTest, TransformedSourceRoundTrips) {
  // For every benchmark program: the emitted transformed source must
  // reparse and recheck cleanly, and re-analyzing it must find no MORE
  // substitutions than the original — every substituted use became a
  // literal, so the pool of substitutable uses can only shrink.
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult First = runPipeline(W.Source, Opts);
  ASSERT_TRUE(First.Ok) << First.Error;

  EXPECT_EQ(test::diagnose(First.TransformedSource), "")
      << "transformed source must reparse and recheck cleanly";

  PipelineResult Second = runPipeline(First.TransformedSource, Opts);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_LE(Second.SubstitutedConstants, First.SubstitutedConstants);
}

TEST_P(EndToEndSuiteTest, TransformedSourceRoundTripsUnderComplete) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  Opts.CompletePropagation = true;
  PipelineResult First = runPipeline(W.Source, Opts);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(test::diagnose(First.TransformedSource), "")
      << "transformed source must reparse and recheck cleanly";
  PipelineResult Second = runPipeline(First.TransformedSource, Opts);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_LE(Second.SubstitutedConstants, First.SubstitutedConstants);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EndToEndSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
