//===- tests/PipelineTests.cpp - ipcp/Pipeline unit + property tests ------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"

#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

unsigned countFor(const std::string &Source, PipelineOptions Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

PipelineOptions withKind(JumpFunctionKind Kind) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  return Opts;
}

} // namespace

TEST(Pipeline, ReportsParseErrors) {
  PipelineResult R = runPipeline("proc main(\nend\n", PipelineOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("error"), std::string::npos);
}

TEST(Pipeline, ReportsSemaErrors) {
  PipelineResult R =
      runPipeline("proc main()\n  x = 1\nend\n", PipelineOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("undeclared"), std::string::npos);
}

TEST(Pipeline, ReportsMissingMain) {
  PipelineResult R = runPipeline("proc f()\nend\n", PipelineOptions());
  EXPECT_FALSE(R.Ok);
}

TEST(Pipeline, ReportsConstantsSets) {
  PipelineResult R = runPipeline(R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)",
                                 PipelineOptions());
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.ProcNames.size(), 2u);
  // CONSTANTS(f) = {(x, 5)}.
  bool Found = false;
  for (size_t P = 0; P != R.Constants.size(); ++P)
    for (const auto &[Name, Value] : R.Constants[P])
      if (R.ProcNames[P] == "f" && Name == "x") {
        EXPECT_EQ(Value, 5);
        Found = true;
      }
  EXPECT_TRUE(Found);
}

TEST(Pipeline, ReportsNeverCalledProcs) {
  PipelineResult R = runPipeline(R"(proc main()
end
proc orphan()
end
)",
                                 PipelineOptions());
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.NeverCalled.size(), 1u);
  EXPECT_EQ(R.NeverCalled[0], "orphan");
}

TEST(Pipeline, NeverCalledIsTransitiveAndKeepsNoConstants) {
  // An orphan's callees are unreachable too, even though they have call
  // sites; reachable procedures still report their constants.
  PipelineResult R = runPipeline(R"(proc main()
  call f(7)
end
proc f(x)
  print x
end
proc orphan()
  call helper(3)
end
proc helper(y)
  print y
end
)",
                                 PipelineOptions());
  ASSERT_TRUE(R.Ok);
  // ProcId order == source order.
  ASSERT_EQ(R.NeverCalled, (std::vector<std::string>{"orphan", "helper"}));
  for (size_t P = 0; P != R.Constants.size(); ++P)
    if (R.ProcNames[P] == "orphan" || R.ProcNames[P] == "helper") {
      EXPECT_TRUE(R.Constants[P].empty()) << R.ProcNames[P];
      EXPECT_EQ(R.PerProcSubstituted[P], 0u) << R.ProcNames[P];
    }
  // helper's VAL cells stayed TOP, so its literal actual never counted.
  EXPECT_EQ(R.SubstitutedConstants, 1u);
}

TEST(Pipeline, NeverCalledIsNotReportedIntraOnly) {
  // The intraprocedural baseline skips the interprocedural phases, so it
  // makes no reachability claims at all.
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  PipelineResult R = runPipeline(R"(proc main()
end
proc orphan()
end
)",
                                 Intra);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.NeverCalled.empty());
}

//===----------------------------------------------------------------------===//
// Solver effort counters (SolverProcVisits / SolverJfEvaluations /
// SolverCellLowerings) — exact on a program small enough to trace by
// hand, structural on the suite.
//===----------------------------------------------------------------------===//

TEST(Pipeline, EffortCountersExactForTinyProgram) {
  // One call site, one interprocedural cell (f's formal x), no globals.
  const char *Source = R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)";

  // Worklist: pops main (evaluates the one jf, lowers x TOP->5), then
  // pops the initially-queued f (no call sites). Two visits, one
  // evaluation, one lowering.
  PipelineResult Worklist = runPipeline(Source, PipelineOptions());
  ASSERT_TRUE(Worklist.Ok);
  EXPECT_EQ(Worklist.SolverProcVisits, 2u);
  EXPECT_EQ(Worklist.SolverJfEvaluations, 1u);
  EXPECT_EQ(Worklist.SolverCellLowerings, 1u);

  // Round-robin: one full sweep that changes something, one that
  // confirms the fixpoint. Twice the visits and evaluations, same
  // lowerings.
  PipelineOptions RR;
  RR.Strategy = SolverStrategy::RoundRobin;
  PipelineResult RoundRobin = runPipeline(Source, RR);
  ASSERT_TRUE(RoundRobin.Ok);
  EXPECT_EQ(RoundRobin.SolverProcVisits, 4u);
  EXPECT_EQ(RoundRobin.SolverJfEvaluations, 2u);
  EXPECT_EQ(RoundRobin.SolverCellLowerings, 1u);

  // Binding graph: one cell, one edge, evaluated once; ProcVisits
  // reports the cell count.
  PipelineOptions BG;
  BG.Strategy = SolverStrategy::BindingGraph;
  PipelineResult Binding = runPipeline(Source, BG);
  ASSERT_TRUE(Binding.Ok);
  EXPECT_EQ(Binding.SolverProcVisits, 1u);
  EXPECT_EQ(Binding.SolverJfEvaluations, 1u);
  EXPECT_EQ(Binding.SolverCellLowerings, 1u);
}

TEST(Pipeline, EffortCountersZeroIntraOnly) {
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  PipelineResult R = runPipeline("proc main()\n  call f(5)\nend\n"
                                 "proc f(x)\n  print x\nend\n",
                                 Intra);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.SolverProcVisits, 0u);
  EXPECT_EQ(R.SolverJfEvaluations, 0u);
  EXPECT_EQ(R.SolverCellLowerings, 0u);
}

TEST(Pipeline, EffortCountersStructuralOnSuite) {
  const WorkloadProgram &W = benchmarkSuite()[2]; // fpppp
  PipelineResult R = runPipeline(W.Source, PipelineOptions());
  ASSERT_TRUE(R.Ok);
  // Every reachable procedure is visited at least once.
  size_t Reachable = R.ProcNames.size() - R.NeverCalled.size();
  EXPECT_GE(R.SolverProcVisits, Reachable);
  EXPECT_GT(R.SolverJfEvaluations, 0u);
  EXPECT_GT(R.SolverCellLowerings, 0u);
  // The shallow lattice: every constant cell cost at least one lowering,
  // and no cell can lower more than twice.
  size_t ConstantCells = 0;
  for (const auto &Cells : R.Constants)
    ConstantCells += Cells.size();
  EXPECT_GE(R.SolverCellLowerings, ConstantCells);

  // The worklist never evaluates more jump functions than a full
  // round-robin convergence on the same program.
  PipelineOptions RR;
  RR.Strategy = SolverStrategy::RoundRobin;
  PipelineResult RoundRobin = runPipeline(W.Source, RR);
  ASSERT_TRUE(RoundRobin.Ok);
  EXPECT_LE(R.SolverJfEvaluations, RoundRobin.SolverJfEvaluations);
}

TEST(Pipeline, TransformedSourceSubstitutesConstants) {
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult R = runPipeline(R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)",
                                 Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_NE(R.TransformedSource.find("print 5"), std::string::npos);
}

TEST(Pipeline, CompletePropagationExposesConstants) {
  // The paper's ocean mechanism in miniature: DCE removes the
  // conflicting definition, the re-run finds the constant downstream.
  const char *Source = R"(proc main()
  call produce(0)
end
proc produce(flag)
  integer v
  v = 8
  if (flag == 1) then
    read v
  end if
  call consume(v)
end
proc consume(p)
  print p
  print p + 1
end
)";
  PipelineOptions Plain;
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  unsigned Before = countFor(Source, Plain);
  PipelineResult After = runPipeline(Source, Complete);
  ASSERT_TRUE(After.Ok);
  EXPECT_GT(After.SubstitutedConstants, Before);
  EXPECT_EQ(After.DceRounds, 1u);
  EXPECT_GE(After.FoldedBranches, 1u);
}

TEST(Pipeline, CompletePropagationIsIdempotentWithoutDeadCode) {
  const char *Source = R"(proc main()
  call f(5)
end
proc f(x)
  print x
end
)";
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  PipelineResult R = runPipeline(Source, Complete);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.DceRounds, 0u);
  EXPECT_EQ(R.SubstitutedConstants, countFor(Source, PipelineOptions()));
}

TEST(Pipeline, IntraOnlyIgnoresInterproceduralFlow) {
  const char *Source = R"(proc main()
  integer n
  n = 2
  print n
  call f(5)
end
proc f(x)
  print x
end
)";
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  EXPECT_EQ(countFor(Source, Intra), 1u);    // only 'n'
  EXPECT_EQ(countFor(Source, PipelineOptions()), 2u);
}

TEST(Pipeline, SolverStrategyDoesNotChangeResults) {
  const WorkloadProgram &W = benchmarkSuite()[2]; // fpppp
  PipelineOptions A;
  PipelineOptions B;
  B.Strategy = SolverStrategy::RoundRobin;
  EXPECT_EQ(countFor(W.Source, A), countFor(W.Source, B));
}

//===----------------------------------------------------------------------===//
// The paper's structural findings as properties over the entire suite.
//===----------------------------------------------------------------------===//

class PipelineSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineSuiteTest, KindHierarchyIsMonotone) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  unsigned Lit = countFor(W.Source, withKind(JumpFunctionKind::Literal));
  unsigned Intra =
      countFor(W.Source, withKind(JumpFunctionKind::IntraConst));
  unsigned Pass =
      countFor(W.Source, withKind(JumpFunctionKind::PassThrough));
  unsigned Poly =
      countFor(W.Source, withKind(JumpFunctionKind::Polynomial));
  EXPECT_LE(Lit, Intra);
  EXPECT_LE(Intra, Pass);
  EXPECT_LE(Pass, Poly);
  // The paper's empirical headline: pass-through ties polynomial.
  EXPECT_EQ(Pass, Poly);
}

TEST_P(PipelineSuiteTest, ReturnJfsNeverHurt) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions NoRjf;
  NoRjf.UseReturnJumpFunctions = false;
  EXPECT_LE(countFor(W.Source, NoRjf),
            countFor(W.Source, PipelineOptions()));
}

TEST_P(PipelineSuiteTest, ModNeverHurts) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions NoMod;
  NoMod.UseMod = false;
  EXPECT_LE(countFor(W.Source, NoMod),
            countFor(W.Source, PipelineOptions()));
}

TEST_P(PipelineSuiteTest, CompleteNeverHurtsAndConvergesInOneRound) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  PipelineResult R = runPipeline(W.Source, Complete);
  ASSERT_TRUE(R.Ok);
  EXPECT_GE(R.SubstitutedConstants,
            countFor(W.Source, PipelineOptions()));
  EXPECT_LE(R.DceRounds, 1u); // Paper: one DCE pass sufficed.
}

TEST_P(PipelineSuiteTest, IntraOnlyIsALowerBound) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Intra;
  Intra.IntraproceduralOnly = true;
  EXPECT_LE(countFor(W.Source, Intra),
            countFor(W.Source, PipelineOptions()));
}

TEST_P(PipelineSuiteTest, TransformedSourceIsStable) {
  // Substituting the constants and re-analyzing must find at least as
  // many constants (substitution only strengthens the program), and the
  // transformed source must still be a valid program.
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Opts;
  Opts.EmitTransformedSource = true;
  PipelineResult First = runPipeline(W.Source, Opts);
  ASSERT_TRUE(First.Ok);
  PipelineResult Second = runPipeline(First.TransformedSource, Opts);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_GE(Second.SubstitutedConstants, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PipelineSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

namespace {

// Needs two DCE rounds: folding main's dead call site is what makes
// p's formal constant, exposing p's dead branch on the next round.
const char *TwoRoundSource = R"(proc q(m)
  print m
end
proc p(k)
  if (k != 5) then
    call q(1)
  end if
  call q(3)
  print k
end
proc main()
  if (0 == 1) then
    call p(99)
  end if
  call p(5)
end
)";

} // namespace

TEST(PipelineConvergence, MultiRoundProgramConverges) {
  PipelineOptions Opts;
  Opts.CompletePropagation = true;
  PipelineResult R = runPipeline(TwoRoundSource, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.DceRounds, 2u);
  EXPECT_EQ(R.FoldedBranches, 2u);
}

TEST(PipelineConvergence, BoundIsARealRuntimeCheck) {
  // Regression: the convergence bound used to be an assert, which a
  // Release build strips — a non-converging propagate/DCE cycle would
  // loop forever. It must be a real check that fails the pipeline.
  PipelineOptions Opts;
  Opts.CompletePropagation = true;
  Opts.MaxDceRounds = 1;
  PipelineResult R = runPipeline(TwoRoundSource, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("failed to converge"), std::string::npos)
      << R.Error;
}

TEST(PipelineConvergence, ExactBoundSuffices) {
  PipelineOptions Opts;
  Opts.CompletePropagation = true;
  Opts.MaxDceRounds = 2;
  PipelineResult R = runPipeline(TwoRoundSource, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.DceRounds, 2u);
}
