//===- tests/GatedSsaTests.cpp - Gated SSA extension tests ----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// Tests for the paper's §4.2 suggested improvement: jump functions over
// gated single-assignment form.
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunctionBuilder.h"
#include "ipcp/Pipeline.h"

#include "TestHelpers.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

//===----------------------------------------------------------------------===//
// VnContext gamma nodes.
//===----------------------------------------------------------------------===//

TEST(GatedVn, GammaFoldsConstantPredicate) {
  VnContext Ctx;
  const VnExpr *T = Ctx.getConst(1);
  const VnExpr *F = Ctx.getConst(2);
  EXPECT_EQ(Ctx.getGamma(Ctx.getConst(1), T, F), T);
  EXPECT_EQ(Ctx.getGamma(Ctx.getConst(0), T, F), F);
}

TEST(GatedVn, GammaFoldsEqualArms) {
  VnContext Ctx;
  const VnExpr *V = Ctx.getConst(9);
  EXPECT_EQ(Ctx.getGamma(Ctx.getParam(1), V, V), V);
}

TEST(GatedVn, GammaIsHashConsed) {
  VnContext Ctx;
  const VnExpr *C = Ctx.getParam(1);
  const VnExpr *A = Ctx.getConst(1), *B = Ctx.getConst(2);
  EXPECT_EQ(Ctx.getGamma(C, A, B), Ctx.getGamma(C, A, B));
  EXPECT_NE(Ctx.getGamma(C, A, B), Ctx.getGamma(C, B, A));
}

TEST(GatedVn, GatedParamClassification) {
  VnContext Ctx;
  const VnExpr *Cond = Ctx.getBinary(BinaryOp::CmpEq, Ctx.getParam(1),
                                     Ctx.getConst(1));
  const VnExpr *WithOpaqueArm =
      Ctx.getGamma(Cond, Ctx.makeOpaque(), Ctx.getConst(8));
  EXPECT_FALSE(isParamExpr(WithOpaqueArm));
  EXPECT_TRUE(isGatedParamExpr(WithOpaqueArm));

  // An opaque *predicate* defeats even the gated form.
  const VnExpr *OpaqueCond =
      Ctx.getGamma(Ctx.makeOpaque(), Ctx.getConst(1), Ctx.getConst(8));
  EXPECT_FALSE(isGatedParamExpr(OpaqueCond));
}

TEST(GatedVn, SupportIncludesPredicate) {
  VnContext Ctx;
  const VnExpr *G = Ctx.getGamma(Ctx.getParam(3), Ctx.getParam(4),
                                 Ctx.getConst(0));
  std::vector<SymbolId> Support;
  collectSupport(G, Support);
  EXPECT_EQ(Support.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Gated JfExpr evaluation.
//===----------------------------------------------------------------------===//

TEST(GatedJf, SelectsArmByPredicate) {
  VnContext Ctx;
  const VnExpr *Cond = Ctx.getBinary(BinaryOp::CmpEq, Ctx.getParam(1),
                                     Ctx.getConst(1));
  const VnExpr *G = Ctx.getGamma(Cond, Ctx.makeOpaque(), Ctx.getConst(8));
  JumpFunction J = JumpFunction::classify(JumpFunctionKind::Polynomial, G,
                                          false, /*AllowGated=*/true);
  ASSERT_EQ(J.form(), JumpFunction::Form::Poly);

  auto EnvZero = [](SymbolId) { return LatticeValue::constant(0); };
  LatticeValue V = J.eval(EnvZero); // Predicate false -> 8.
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 8);

  auto EnvOne = [](SymbolId) { return LatticeValue::constant(1); };
  EXPECT_TRUE(J.eval(EnvOne).isBottom()); // Selects the unknown arm.

  auto EnvBottom = [](SymbolId) { return LatticeValue::bottom(); };
  EXPECT_TRUE(J.eval(EnvBottom).isBottom()); // Predicate unknown.

  auto EnvTop = [](SymbolId) { return LatticeValue::top(); };
  EXPECT_TRUE(J.eval(EnvTop).isTop());
}

TEST(GatedJf, UnknownPredicateMeetsArms) {
  VnContext Ctx;
  // Both arms are the same constant reached differently: gamma folds...
  // so build arms that differ structurally but evaluate equal.
  const VnExpr *G = Ctx.getGamma(
      Ctx.getParam(1),
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(2), Ctx.getConst(1)),
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(2), Ctx.getConst(1)));
  // Equal arms folded away; use distinct arms over the same param.
  const VnExpr *G2 = Ctx.getGamma(
      Ctx.getParam(1),
      Ctx.getBinary(BinaryOp::Mul, Ctx.getParam(2), Ctx.getConst(2)),
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(2), Ctx.getParam(2)));
  (void)G;
  JumpFunction J = JumpFunction::classify(JumpFunctionKind::Polynomial,
                                          G2, false, true);
  ASSERT_EQ(J.form(), JumpFunction::Form::Poly);
  // p1 unknown, p2 = 3: both arms evaluate to 6 -> the meet is 6.
  auto Env = [](SymbolId S) {
    return S == 1 ? LatticeValue::bottom() : LatticeValue::constant(3);
  };
  LatticeValue V = J.eval(Env);
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 6);
}

TEST(GatedJf, CloneAndRendering) {
  FullAnalysis A = analyze("global n\nproc main()\n  n = 1\nend\n");
  VnContext Ctx;
  const VnExpr *G =
      Ctx.getGamma(Ctx.getParam(A.symbol("n")), Ctx.makeOpaque(),
                   Ctx.getConst(8));
  JumpFunction J = JumpFunction::classify(JumpFunctionKind::Polynomial, G,
                                          false, true);
  JumpFunction K = J.clone();
  EXPECT_EQ(K.str(A.Symbols), "poly(gamma(n, ?, 8))");
  auto Env = [](SymbolId) { return LatticeValue::constant(0); };
  EXPECT_EQ(K.eval(Env).value(), 8);
}

//===----------------------------------------------------------------------===//
// Whole-pipeline behaviour.
//===----------------------------------------------------------------------===//

namespace {

unsigned countFor(const std::string &Source, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.SubstitutedConstants;
}

} // namespace

TEST(GatedPipeline, SkipsDeadDefinitionWithoutDce) {
  // The ocean mechanism: GSA sees through the dead conflicting READ.
  const char *Source = R"(proc main()
  call produce(0)
end
proc produce(flag)
  integer v
  v = 8
  if (flag == 1) then
    read v
  end if
  call consume(v)
end
proc consume(p)
  print p
  print p * 2
end
)";
  PipelineOptions Plain;
  PipelineOptions Gated;
  Gated.UseGatedSsa = true;
  unsigned Before = countFor(Source, Plain);
  unsigned After = countFor(Source, Gated);
  EXPECT_EQ(After, Before + 2); // The two uses in consume.
}

TEST(GatedPipeline, GammaPropagatesPerCallSite) {
  // Different flag values at different sites select different arms.
  const char *Source = R"(proc main()
  call pick(1)
end
proc pick(flag)
  integer v
  if (flag == 1) then
    v = 10
  else
    v = 20
  end if
  call sink(v)
end
proc sink(p)
  print p
end
)";
  PipelineOptions Gated;
  Gated.UseGatedSsa = true;
  PipelineResult R = runPipeline(Source, Gated);
  ASSERT_TRUE(R.Ok);
  // sink's p is the selected 10.
  bool Found = false;
  for (size_t P = 0; P != R.ProcNames.size(); ++P)
    for (const auto &[Name, Value] : R.Constants[P])
      if (R.ProcNames[P] == "sink" && Name == "p") {
        EXPECT_EQ(Value, 10);
        Found = true;
      }
  EXPECT_TRUE(Found);
}

TEST(GatedPipeline, LoopPhisStayOpaque) {
  // Mu functions (loop-carried values) are not gated: still bottom.
  const char *Source = R"(proc main()
  call count(3)
end
proc count(n)
  integer i, s
  s = 0
  do i = 1, n
    s = s + 1
  end do
  call sink(s)
end
proc sink(p)
  print p
end
)";
  PipelineOptions Gated;
  Gated.UseGatedSsa = true;
  PipelineResult R = runPipeline(Source, Gated);
  ASSERT_TRUE(R.Ok);
  for (size_t P = 0; P != R.ProcNames.size(); ++P)
    if (R.ProcNames[P] == "sink")
      for (const auto &[Name, Value] : R.Constants[P])
        EXPECT_NE(Name, "p");
}

class GatedSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GatedSuiteTest, GsaSubsumesCompletePropagation) {
  // Paper §4.2: gated jump functions achieve complete-propagation
  // results without iterating. (They may exceed it by the guard uses
  // that DCE deletes outright.)
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  PipelineOptions Complete;
  Complete.CompletePropagation = true;
  PipelineOptions Gated;
  Gated.UseGatedSsa = true;
  EXPECT_GE(countFor(W.Source, Gated), countFor(W.Source, Complete));
  EXPECT_GE(countFor(W.Source, Gated),
            countFor(W.Source, PipelineOptions()));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GatedSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });
