//===- tests/CopyPropTests.cpp - The copy-lattice wall --------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The copy tier's contract, pinned differentially against the classic
// analysis ('check-copy' label; tools/verify.sh runs it under the
// default and asan presets):
//
//   * Inclusion soundness. Per procedure, every CONSTANTS(p) entry the
//     classic analysis proves is also proved — with the same value —
//     with the copy lattice on, under both the polynomial and the
//     pass-through base kinds. Checked over the 15 extended-suite
//     programs and a 200-seed random sweep with copy-relay shapes on.
//
//   * Ground truth. The substitutions only the copy lattice recovers
//     (cell-mediated relay chains, const-cell handoffs) are validated
//     by the translation-validation oracle, so a cell-kill bug cannot
//     hide behind the inclusion direction.
//
//   * Family gains. Each copy-stress workload family substitutes
//     strictly more under --copy than classically (the issue's
//     acceptance asks for 2 of 3; all 3 hold).
//
//   * Toggle-off identity. With the flag off, a session previously
//     warmed by copy cells still produces results byte-identical to a
//     cold classic run — the lattice leaves no residue in shared state.
//
//===----------------------------------------------------------------------===//

#include "exec/Oracle.h"
#include "ipcp/AnalysisSession.h"
#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

using namespace ipcp;

namespace {

PipelineOptions copyOpts(JumpFunctionKind Kind = JumpFunctionKind::Polynomial) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  Opts.CopyPropagation = true;
  return Opts;
}

PipelineOptions classicOpts(JumpFunctionKind Kind) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  return Opts;
}

PipelineResult runOk(const std::string &Source, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

/// True when every CONSTANTS(p) entry of \p Weak also appears, with the
/// same value, in \p Strong (procedures matched by name). On failure
/// \p Witness names the lost entry. Same-value matching matters: a
/// lattice that "finds" a constant with a different value is a
/// soundness bug, not extra precision.
bool constantsIncluded(const PipelineResult &Weak,
                       const PipelineResult &Strong, std::string &Witness) {
  for (size_t P = 0; P != Weak.ProcNames.size(); ++P) {
    if (Weak.Constants[P].empty())
      continue;
    const std::vector<std::pair<std::string, int64_t>> *Sup = nullptr;
    for (size_t Q = 0; Q != Strong.ProcNames.size(); ++Q)
      if (Strong.ProcNames[Q] == Weak.ProcNames[P]) {
        Sup = &Strong.Constants[Q];
        break;
      }
    for (const auto &Entry : Weak.Constants[P]) {
      bool Found = false;
      if (Sup)
        for (const auto &Have : *Sup)
          if (Have == Entry) {
            Found = true;
            break;
          }
      if (!Found) {
        Witness = Weak.ProcNames[P] + ": " + Entry.first + "=" +
                  std::to_string(Entry.second);
        return false;
      }
    }
  }
  return true;
}

void expectCopyInclusion(const std::string &Source,
                         const std::string &Label) {
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Polynomial, JumpFunctionKind::PassThrough}) {
    PipelineResult Base = runOk(Source, classicOpts(Kind));
    PipelineResult Copy = runOk(Source, copyOpts(Kind));
    std::string Witness;
    EXPECT_TRUE(constantsIncluded(Base, Copy, Witness))
        << Label << ": copy lattice lost " << Witness;
  }
}

/// Every deterministic field of a PipelineResult, rendered for
/// byte-identity comparisons (the ParallelPipelineTests notion).
std::string fingerprint(const PipelineResult &R) {
  std::ostringstream OS;
  OS << R.Ok << '|' << R.Error << '|' << R.SubstitutedConstants << '|'
     << R.ConstantPrints << '|' << R.KnownButIrrelevant << '|'
     << R.DceRounds << '|' << R.FoldedBranches << '|'
     << R.AliasPointsRefined << '|' << R.GvnPhiMerges << '|'
     << R.CopyLoadsResolved << '|' << R.CopyForwardJfs << '\n';
  OS << "perproc:";
  for (unsigned N : R.PerProcSubstituted)
    OS << ' ' << N;
  OS << "\nconstants:\n";
  for (size_t P = 0; P != R.Constants.size(); ++P) {
    OS << "  [" << P << "]";
    for (const auto &[Name, Value] : R.Constants[P])
      OS << " (" << Name << ',' << Value << ')';
    OS << '\n';
  }
  std::map<ExprId, int64_t> Subs(R.Substitutions.begin(),
                                 R.Substitutions.end());
  OS << "subs:";
  for (const auto &[Id, Value] : Subs)
    OS << ' ' << Id << '=' << Value;
  OS << "\nsource:" << R.TransformedSource;
  return OS.str();
}

/// A two-hop cell relay: classically the buf(1) actual is an opaque
/// load, so relay and leaf see nothing; the copy lattice folds the whole
/// chain to 7.
const char *CellRelaySource = R"(proc main()
  call relay(7)
end
proc relay(x)
  array buf(8)
  buf(1) = x
  call leaf(buf(1))
end
proc leaf(p)
  print p * 2
  print p * 5
end
)";

/// A const-cell handoff plus an in-procedure resolved load — the pure
/// Const(c) fact, no scalar stability involved.
const char *ConstCellSource = R"(proc main()
  array c(4)
  c(2) = 9
  print c(2) + 1
  call leaf(c(2))
end
proc leaf(p)
  print p * 3
end
)";

/// A store through a variable index between the stash and the call:
/// the smash must kill the cell, so the copy run equals the classic one.
const char *SmashedCellSource = R"(proc main()
  integer i
  array buf(8)
  read i
  buf(1) = 5
  buf(i) = 0
  call leaf(buf(1))
end
proc leaf(p)
  print p * 2
end
)";

} // namespace

//===----------------------------------------------------------------------===//
// Inclusion over the extended suite.
//===----------------------------------------------------------------------===//

class CopySuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CopySuiteTest, ClassicConstantsSurviveTheCopyLattice) {
  const WorkloadProgram &W = extendedSuite()[GetParam()];
  expectCopyInclusion(W.Source, W.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CopySuiteTest, ::testing::Range<size_t>(0, 15),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return extendedSuite()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Inclusion over a random sweep.
//===----------------------------------------------------------------------===//

TEST(CopyDifferential, RandomProgramsNeverLoseConstants) {
  // 200 seeds with the copy-relay shapes on, rotating size/recursion
  // profiles so globals, aliasing calls, and recursion all appear
  // alongside the relay stores.
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.Procs = 4 + int(Seed % 5);
    Spec.Globals = 1 + int(Seed % 4);
    Spec.AllowRecursion = Seed % 3 == 0;
    Spec.CopyRelayStores = true;
    std::string Source = generateRandomProgram(Spec);
    expectCopyInclusion(Source, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// The recovered substitutions, against ground truth.
//===----------------------------------------------------------------------===//

TEST(CopyDifferential, CellRelayRecoveryIsRealAndOracleValid) {
  PipelineResult Base = runOk(CellRelaySource, PipelineOptions());
  PipelineResult Copy = runOk(CellRelaySource, copyOpts());
  // Classically the chain dies at the opaque buf(1) actual; the copy
  // lattice recovers leaf's two uses plus relay's store operand.
  EXPECT_LT(Base.SubstitutedConstants, Copy.SubstitutedConstants);
  EXPECT_GE(Copy.CopyLoadsResolved, 1u);

  OracleOptions OO;
  OO.Pipeline = copyOpts();
  OracleResult R = validateTranslation(CellRelaySource, OO);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SubstitutedUseChecks, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(CopyDifferential, ConstCellRecoveryIsRealAndOracleValid) {
  PipelineResult Base = runOk(ConstCellSource, PipelineOptions());
  PipelineResult Copy = runOk(ConstCellSource, copyOpts());
  // The in-main print and the leaf's use both fold only under copy.
  EXPECT_LT(Base.SubstitutedConstants, Copy.SubstitutedConstants);
  EXPECT_GE(Copy.CopyLoadsResolved, 2u);

  OracleOptions OO;
  OO.Pipeline = copyOpts();
  OracleResult R = validateTranslation(ConstCellSource, OO);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SubstitutedUseChecks, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(CopyDifferential, VariableIndexStoreKillsTheCell) {
  PipelineResult Base = runOk(SmashedCellSource, PipelineOptions());
  PipelineResult Copy = runOk(SmashedCellSource, copyOpts());
  // The buf(i) smash between the stash and the call must kill the
  // Const(5) fact: same substitutions, and the oracle agrees.
  EXPECT_EQ(Base.SubstitutedConstants, Copy.SubstitutedConstants);

  OracleOptions OO;
  OO.Pipeline = copyOpts();
  OracleResult R = validateTranslation(SmashedCellSource, OO);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(CopyDifferential, EveryCopyFamilyGainsAndSurvivesTheOracle) {
  // The issue's acceptance: --copy substitutes strictly more than
  // classic on at least 2 of the 3 new families. All 3 gain, under both
  // base kinds, and the upgraded substitutions execute correctly.
  for (const WorkloadProgram &P : copyStressPrograms()) {
    for (JumpFunctionKind Kind :
         {JumpFunctionKind::Polynomial, JumpFunctionKind::PassThrough}) {
      PipelineResult Base = runOk(P.Source, classicOpts(Kind));
      PipelineResult Copy = runOk(P.Source, copyOpts(Kind));
      EXPECT_LT(Base.SubstitutedConstants, Copy.SubstitutedConstants)
          << P.Name;
      EXPECT_GT(Copy.CopyLoadsResolved, 0u) << P.Name;
      OracleOptions OO;
      OO.Pipeline = copyOpts(Kind);
      OracleResult R = validateTranslation(P.Source, OO);
      EXPECT_TRUE(R.Ok) << P.Name << ": " << R.Error;
      EXPECT_EQ(R.ConstantMismatches, 0u) << P.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Toggle-off identity.
//===----------------------------------------------------------------------===//

TEST(CopyDifferential, WarmedSessionLeavesClassicResultsByteIdentical) {
  // Copy cells must not perturb shared analysis state: after copy runs
  // warmed a session's caches (the CopyPropInfo slots, 6-bit-keyed jump
  // function bases, copy-aware solver memo entries), a default run over
  // the same session is byte-identical to a cold classic run.
  std::vector<WorkloadProgram> Programs = copyStressPrograms();
  Programs.push_back(benchmarkSuite()[1]);  // doduc
  Programs.push_back(benchmarkSuite()[11]); // trfd
  for (const WorkloadProgram &W : Programs) {
    PipelineOptions Classic;
    Classic.EmitTransformedSource = true;
    std::string Cold = fingerprint(runOk(W.Source, Classic));

    DiagnosticEngine Diags;
    auto Ctx = parseProgram(W.Source, Diags);
    SymbolTable Symbols = Sema::run(*Ctx, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    AnalysisSession Session(*Ctx, Symbols);
    PipelineOptions Poly = copyOpts();
    Poly.EmitTransformedSource = true;
    PipelineOptions Pass = copyOpts(JumpFunctionKind::PassThrough);
    Pass.EmitTransformedSource = true;
    ASSERT_TRUE(runPipelineOnSession(Session, Poly).Ok);
    ASSERT_TRUE(runPipelineOnSession(Session, Pass).Ok);
    PipelineResult Warm = runPipelineOnSession(Session, Classic);
    ASSERT_TRUE(Warm.Ok) << Warm.Error;
    EXPECT_EQ(Cold, fingerprint(Warm)) << W.Name;
  }
}
