//===- tests/VmDifferentialTests.cpp - VM vs interpreter wall -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-differential wall: the bytecode VM must be observationally
/// indistinguishable from the normative AST interpreter on every program
/// this project can produce — the 12 suite programs, hundreds of seeded
/// random programs and their substituted/inlined/cloned variants under
/// every fuzz configuration, and every curated corpus entry (directly,
/// and through the server's fuzz-replay and validate methods). Identity
/// means the full observable record: PRINT trace, READ consumption, step
/// count, termination status with trap location, and final global/array
/// state.
///
/// Built as its own binary (ipcp_vm_tests) under the 'check-vm' CTest
/// label; the fast hand-written trap-parity pins live in tier-1
/// VmTests.cpp.
///
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "exec/Oracle.h"
#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "ipcp/Cloning.h"
#include "ipcp/Inliner.h"
#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "support/FuzzFeedback.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace ipcp;

namespace {

/// READ seeds every identity check executes under.
const std::vector<uint64_t> kReadSeeds = {1, 2, 7};

/// Step budget for the sweeps: large enough that most random programs
/// terminate on their own, small enough that the step-limit trap path is
/// exercised too.
constexpr uint64_t kMaxSteps = 20000;

struct Checked {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

Checked check(const std::string &Source) {
  Checked C;
  DiagnosticEngine Diags;
  C.Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    C.Symbols = Sema::run(*C.Ctx, Diags);
  if (Diags.hasErrors())
    C.Error = Diags.str();
  return C;
}

void expectSameRun(const RunResult &Ast, const RunResult &Vm,
                   const std::string &What) {
  EXPECT_EQ(Ast.Status, Vm.Status)
      << What << "\nast: " << Ast.str() << "\nvm:  " << Vm.str();
  EXPECT_EQ(Ast.TrapLoc.str(), Vm.TrapLoc.str()) << What;
  EXPECT_EQ(Ast.Prints, Vm.Prints) << What;
  EXPECT_EQ(Ast.Steps, Vm.Steps) << What;
  EXPECT_EQ(Ast.ReadsConsumed, Vm.ReadsConsumed) << What;
  EXPECT_EQ(Ast.FinalGlobals, Vm.FinalGlobals) << What;
  EXPECT_EQ(Ast.FinalGlobalArrays, Vm.FinalGlobalArrays) << What;
}

/// Runs \p Source under both engines across every READ seed and expects
/// full observable identity. Returns the VM statuses seen (for trap
/// coverage accounting).
std::vector<RunStatus> expectEngineIdentity(const std::string &Source,
                                            const std::string &What) {
  std::vector<RunStatus> Seen;
  Checked C = check(Source);
  if (!C.ok()) {
    ADD_FAILURE() << What << ": does not parse: " << C.Error;
    return Seen;
  }
  ProgramRunner Ast(C.Ctx->program(), C.Symbols, ExecEngine::Ast);
  ProgramRunner Vm(C.Ctx->program(), C.Symbols, ExecEngine::Vm);
  for (uint64_t Seed : kReadSeeds) {
    RunOptions RO;
    RO.ReadSeed = Seed;
    RO.Limits.MaxSteps = kMaxSteps;
    RunResult A = Ast.run(RO);
    RunResult V = Vm.run(RO);
    expectSameRun(A, V, What + " (read-seed " + std::to_string(Seed) + ")");
    Seen.push_back(V.Status);
  }
  return Seen;
}

//===----------------------------------------------------------------------===//
// Suite programs
//===----------------------------------------------------------------------===//

class VmSuiteIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VmSuiteIdentityTest, TraceIdentical) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  expectEngineIdentity(W.Source, W.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, VmSuiteIdentityTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Random programs x fuzz configs, with their transformed variants
//===----------------------------------------------------------------------===//

/// One seed's whole story: the generated program, its substituted
/// source under each of the 6 fuzz configurations, and its inlined and
/// cloned variants, each trace-identical across engines.
class VmRandomIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmRandomIdentityTest, OriginalAndTransformedTraceIdentical) {
  RandomSpec Spec;
  Spec.Seed = GetParam();
  // Every third seed permits (guarded) recursion so the call-depth
  // machinery is part of the sweep.
  Spec.AllowRecursion = GetParam() % 3 == 0;
  const std::string Source = generateRandomProgram(Spec);
  const std::string Tag = "seed " + std::to_string(GetParam());

  expectEngineIdentity(Source, Tag + " original");

  // The textually substituted program under each fuzz configuration.
  for (const FuzzConfig &FC : fuzzConfigs()) {
    PipelineOptions PO = FC.Pipeline;
    PO.EmitTransformedSource = true;
    PipelineResult P = runPipeline(Source, PO);
    ASSERT_TRUE(P.Ok) << Tag << " " << FC.Name << ": " << P.Error;
    expectEngineIdentity(P.TransformedSource,
                         Tag + " transformed/" + FC.Name);
  }

  // The inlined and cloned variants (configuration-independent).
  {
    Checked C = check(Source);
    ASSERT_TRUE(C.ok()) << Tag;
    InlineResult IR = inlineProgram(*C.Ctx, C.Symbols);
    expectEngineIdentity(IR.Source, Tag + " inlined");
  }
  {
    CloneResult CR = cloneForConstants(Source);
    ASSERT_TRUE(CR.Ok) << Tag << ": " << CR.Error;
    expectEngineIdentity(CR.Source, Tag + " cloned");
  }
}

// 320 seeds x 6 configs (plus original/inlined/cloned per seed), each
// variant executed under every READ seed on both engines.
INSTANTIATE_TEST_SUITE_P(Seeds, VmRandomIdentityTest,
                         ::testing::Range<uint64_t>(1, 321));

TEST(VmRandomSweep, ExercisesTrapsAndCompletions) {
  // The wall is only as strong as its coverage: across a slice of the
  // sweep, programs must both complete and trap.
  std::map<RunStatus, unsigned> Statuses;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    for (RunStatus S :
         expectEngineIdentity(generateRandomProgram(Spec),
                              "sweep seed " + std::to_string(Seed)))
      ++Statuses[S];
  }
  EXPECT_GT(Statuses[RunStatus::Ok], 0u);
  EXPECT_GE(Statuses.size(), 2u)
      << "no random program trapped; the differential wall is not "
         "exercising the trap paths";
}

//===----------------------------------------------------------------------===//
// Oracle engine equivalence
//===----------------------------------------------------------------------===//

/// The whole oracle — trace comparisons, substituted-use checks,
/// CONSTANTS(p) entry checks, inliner and cloning validation — must
/// reach identical verdicts and identical check counts under either
/// engine.
class VmOracleEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(VmOracleEquivalenceTest, OracleResultsIdentical) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 7919 + 13; // Decorrelate from the main sweep.
  const std::string Source = generateRandomProgram(Spec);

  for (const FuzzConfig &FC : fuzzConfigs()) {
    OracleOptions OO;
    OO.Pipeline = FC.Pipeline;
    OO.Limits.MaxSteps = kMaxSteps;
    OO.CheckInliner = true;
    OO.CheckCloning = true;

    OO.Engine = ExecEngine::Vm;
    OracleResult Vm = validateTranslation(Source, OO);
    OO.Engine = ExecEngine::Ast;
    OracleResult Ast = validateTranslation(Source, OO);

    EXPECT_EQ(Ast.Ok, Vm.Ok) << FC.Name << "\nast: " << Ast.Error
                             << "\nvm: " << Vm.Error;
    EXPECT_EQ(Ast.Error, Vm.Error) << FC.Name;
    EXPECT_EQ(Ast.RunsExecuted, Vm.RunsExecuted) << FC.Name;
    EXPECT_EQ(Ast.TraceComparisons, Vm.TraceComparisons) << FC.Name;
    EXPECT_EQ(Ast.SubstitutedUseChecks, Vm.SubstitutedUseChecks) << FC.Name;
    EXPECT_EQ(Ast.EntryConstantChecks, Vm.EntryConstantChecks) << FC.Name;
    EXPECT_EQ(Ast.TraceDivergences, Vm.TraceDivergences) << FC.Name;
    EXPECT_EQ(Ast.ConstantMismatches, Vm.ConstantMismatches) << FC.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmOracleEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

//===----------------------------------------------------------------------===//
// Corpus replay parity
//===----------------------------------------------------------------------===//

std::vector<CorpusEntry> curatedCorpus() {
  std::vector<std::string> Diags;
  std::vector<CorpusEntry> Entries = loadCorpusDir(IPCP_TEST_CORPUS_DIR,
                                                   &Diags);
  EXPECT_TRUE(Diags.empty());
  EXPECT_FALSE(Entries.empty()) << "no corpus at " IPCP_TEST_CORPUS_DIR;
  return Entries;
}

TEST(VmCorpusParity, EntriesTraceIdenticalAndReplayCleanOnBothEngines) {
  std::vector<CorpusEntry> Entries = curatedCorpus();
  bool SawNonmonotone = false;
  for (const CorpusEntry &E : Entries) {
    SawNonmonotone = SawNonmonotone || E.Name == "count-nonmonotone";
    expectEngineIdentity(E.Source, "corpus " + E.Name);

    // The fuzzer's full evaluation (all configs + oracle) must pass and
    // light the identical feature-bit set under either engine.
    FuzzOptions FO;
    FuzzFeedback VmFb, AstFb;
    FO.Engine = ExecEngine::Vm;
    std::optional<FuzzFailure> VmFail = evaluateProgram(E.Source, VmFb, FO);
    FO.Engine = ExecEngine::Ast;
    std::optional<FuzzFailure> AstFail =
        evaluateProgram(E.Source, AstFb, FO);
    EXPECT_FALSE(VmFail) << E.Name << ": " << VmFail->Detail;
    EXPECT_FALSE(AstFail) << E.Name << ": " << AstFail->Detail;
    EXPECT_EQ(VmFb.countBits(), AstFb.countBits()) << E.Name;
    EXPECT_FALSE(VmFb.wouldAddNovel(AstFb)) << E.Name;
    EXPECT_FALSE(AstFb.wouldAddNovel(VmFb)) << E.Name;
  }
  EXPECT_TRUE(SawNonmonotone)
      << "count-nonmonotone.mf missing from the corpus";
}

//===----------------------------------------------------------------------===//
// Server request paths
//===----------------------------------------------------------------------===//

/// Drives the server's fuzz-replay method for one corpus entry under
/// both engines; the reply lines must be byte-identical.
TEST(VmServeParity, FuzzReplayRepliesByteIdenticalAcrossEngines) {
  Server S({.Workers = 1});
  for (const CorpusEntry &E : curatedCorpus()) {
    std::string Raw;
    {
      std::ifstream In(std::string(IPCP_TEST_CORPUS_DIR "/") + E.Name +
                       ".mf");
      ASSERT_TRUE(In) << E.Name;
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Raw = Buf.str();
    }
    std::string VmReply = S.handle(
        "{\"id\":\"r\",\"method\":\"fuzz-replay\",\"params\":{\"entry\":" +
        JsonValue(Raw).dump() + "}}");
    std::string AstReply = S.handle(
        "{\"id\":\"r\",\"method\":\"fuzz-replay\",\"params\":{\"entry\":" +
        JsonValue(Raw).dump() + ",\"exec\":\"ast\"}}");
    std::string ParseError;
    std::optional<JsonValue> Parsed = parseJson(VmReply, ParseError);
    ASSERT_TRUE(Parsed && Parsed->isObject()) << VmReply;
    EXPECT_TRUE(Parsed->boolOr("ok", false)) << E.Name << ": " << VmReply;
    EXPECT_FALSE(Parsed->find("result")->boolOr("failed", true)) << E.Name;
    EXPECT_EQ(VmReply, AstReply) << E.Name;
  }
}

TEST(VmServeParity, ValidateRepliesByteIdenticalAcrossEngines) {
  Server S({.Workers = 1});
  RandomSpec Spec;
  Spec.Seed = 11;
  std::string Src = JsonValue(generateRandomProgram(Spec)).dump();
  std::string VmReply = S.handle(
      "{\"id\":\"v\",\"method\":\"validate\",\"params\":{\"source\":" +
      Src + ",\"max_steps\":20000}}");
  std::string AstReply = S.handle(
      "{\"id\":\"v\",\"method\":\"validate\",\"params\":{\"source\":" +
      Src + ",\"max_steps\":20000,\"exec\":\"ast\"}}");
  std::string ParseError;
  std::optional<JsonValue> Parsed = parseJson(VmReply, ParseError);
  ASSERT_TRUE(Parsed && Parsed->isObject()) << VmReply;
  EXPECT_TRUE(Parsed->boolOr("ok", false)) << VmReply;
  EXPECT_TRUE(Parsed->find("result")->boolOr("valid", false)) << VmReply;
  EXPECT_EQ(VmReply, AstReply);
}

TEST(VmServeParity, RejectsUnknownEngineName) {
  Server S({.Workers = 1});
  std::string Reply = S.handle(
      "{\"id\":\"x\",\"method\":\"validate\",\"params\":{\"source\":"
      "\"proc main()\\nend\\n\",\"exec\":\"jit\"}}");
  std::string ParseError;
  std::optional<JsonValue> Parsed = parseJson(Reply, ParseError);
  ASSERT_TRUE(Parsed && Parsed->isObject()) << Reply;
  EXPECT_FALSE(Parsed->boolOr("ok", true));
  EXPECT_EQ(Parsed->find("error")->strOr("kind", ""), "malformed");
}

} // namespace
