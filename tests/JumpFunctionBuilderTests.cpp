//===- tests/JumpFunctionBuilderTests.cpp - ipcp/JumpFunctionBuilder ------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunctionBuilder.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

ProgramJumpFunctions build(const FullAnalysis &A,
                           JumpFunctionKind Kind,
                           bool UseRjf = true, bool UseMod = true) {
  JumpFunctionOptions Opts;
  Opts.Kind = Kind;
  Opts.UseReturnJumpFunctions = UseRjf;
  Opts.UseMod = UseMod;
  return buildJumpFunctions(A.M, A.Symbols, *A.CG,
                            UseMod ? A.MRI.get() : nullptr, Opts);
}

/// The jump functions at the I-th call site in \p Proc.
const CallSiteJumpFunctions &siteJfs(const FullAnalysis &A,
                                     const ProgramJumpFunctions &Jfs,
                                     const std::string &Proc,
                                     size_t Site = 0) {
  return Jfs.PerSite.at(A.proc(Proc)).at(Site);
}

} // namespace

TEST(JumpFunctionBuilder, LiteralArgGivesConstJf) {
  FullAnalysis A = analyze(
      "proc main()\n  call f(7)\nend\nproc f(x)\n  print x\nend\n");
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    ProgramJumpFunctions Jfs = build(A, Kind);
    const auto &Site = siteJfs(A, Jfs, "main");
    ASSERT_EQ(Site.Args.size(), 1u);
    ASSERT_TRUE(Site.Args[0].isConst()) << jumpFunctionKindName(Kind);
    EXPECT_EQ(Site.Args[0].constValue(), 7);
  }
}

TEST(JumpFunctionBuilder, ComputedConstSeparatesLiteralFromIntra) {
  FullAnalysis A = analyze(R"(proc main()
  integer k
  k = 3 * 4
  call f(k)
end
proc f(x)
  print x
end
)");
  ProgramJumpFunctions LitJfs = build(A, JumpFunctionKind::Literal);
  EXPECT_TRUE(siteJfs(A, LitJfs, "main").Args[0].isBottom());
  ProgramJumpFunctions IntraJfs = build(A, JumpFunctionKind::IntraConst);
  const auto &Intra = siteJfs(A, IntraJfs, "main");
  ASSERT_TRUE(Intra.Args[0].isConst());
  EXPECT_EQ(Intra.Args[0].constValue(), 12);
}

TEST(JumpFunctionBuilder, ForwardedFormalSeparatesIntraFromPass) {
  FullAnalysis A = analyze(R"(proc main()
  call a(5)
end
proc a(x)
  call b(x)
end
proc b(y)
  print y
end
)");
  ProgramJumpFunctions IntraJfs = build(A, JumpFunctionKind::IntraConst);
  EXPECT_TRUE(siteJfs(A, IntraJfs, "a").Args[0].isBottom());
  ProgramJumpFunctions PassJfs = build(A, JumpFunctionKind::PassThrough);
  const auto &Pass = siteJfs(A, PassJfs, "a");
  EXPECT_EQ(Pass.Args[0].form(), JumpFunction::Form::PassThrough);
  EXPECT_EQ(Pass.Args[0].support(),
            std::vector<SymbolId>{A.symbolIn("a", "x")});
}

TEST(JumpFunctionBuilder, PolynomialArgSeparatesPassFromPoly) {
  FullAnalysis A = analyze(R"(proc main()
  call a(5)
end
proc a(x)
  call b(x * 2 + 1)
end
proc b(y)
  print y
end
)");
  ProgramJumpFunctions PassJfs = build(A, JumpFunctionKind::PassThrough);
  EXPECT_TRUE(siteJfs(A, PassJfs, "a").Args[0].isBottom());
  ProgramJumpFunctions PolyJfs = build(A, JumpFunctionKind::Polynomial);
  const auto &Poly = siteJfs(A, PolyJfs, "a");
  EXPECT_EQ(Poly.Args[0].form(), JumpFunction::Form::Poly);
  auto Env = [&](SymbolId) { return LatticeValue::constant(5); };
  EXPECT_EQ(Poly.Args[0].eval(Env).value(), 11);
}

TEST(JumpFunctionBuilder, GlobalsGetJumpFunctionsExceptLiteral) {
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 64
  call f()
end
proc f()
  print g
end
)");
  // Literal: globals are passed implicitly, never as literals (§3.1.1).
  ProgramJumpFunctions LitJfs = build(A, JumpFunctionKind::Literal);
  EXPECT_TRUE(siteJfs(A, LitJfs, "main").Globals[0].isBottom());
  ProgramJumpFunctions IntraJfs = build(A, JumpFunctionKind::IntraConst);
  const auto &Intra = siteJfs(A, IntraJfs, "main");
  ASSERT_TRUE(Intra.Globals[0].isConst());
  EXPECT_EQ(Intra.Globals[0].constValue(), 64);
}

TEST(JumpFunctionBuilder, UntouchedGlobalIsPassThrough) {
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 1
  call a()
end
proc a()
  call b()
end
proc b()
  print g
end
)");
  ProgramJumpFunctions PassJfs = build(A, JumpFunctionKind::PassThrough);
  const auto &Site = siteJfs(A, PassJfs, "a");
  EXPECT_EQ(Site.Globals[0].form(), JumpFunction::Form::PassThrough);
}

TEST(JumpFunctionBuilder, ReturnJfForConstantSetter) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call set(v)
  print v
end
proc set(o)
  o = 25
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  const JumpFunction *Rjf =
      Jfs.returnJf(A.proc("set"), A.symbolIn("set", "o"));
  ASSERT_NE(Rjf, nullptr);
  ASSERT_TRUE(Rjf->isConst());
  EXPECT_EQ(Rjf->constValue(), 25);
}

TEST(JumpFunctionBuilder, ReturnJfPolynomialOfInputs) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  v = 1
  call twice(v)
end
proc twice(o)
  o = o * 2
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  const JumpFunction *Rjf =
      Jfs.returnJf(A.proc("twice"), A.symbolIn("twice", "o"));
  ASSERT_NE(Rjf, nullptr);
  EXPECT_EQ(Rjf->form(), JumpFunction::Form::Poly);
  auto Env = [&](SymbolId) { return LatticeValue::constant(21); };
  EXPECT_EQ(Rjf->eval(Env).value(), 42);
}

TEST(JumpFunctionBuilder, ReturnJfBottomForRead) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call input(v)
end
proc input(o)
  read o
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  const JumpFunction *Rjf =
      Jfs.returnJf(A.proc("input"), A.symbolIn("input", "o"));
  ASSERT_NE(Rjf, nullptr);
  EXPECT_TRUE(Rjf->isBottom());
}

TEST(JumpFunctionBuilder, NoReturnJfsWhenDisabled) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call set(v)
end
proc set(o)
  o = 1
end
)");
  ProgramJumpFunctions Jfs =
      build(A, JumpFunctionKind::Polynomial, /*UseRjf=*/false);
  EXPECT_EQ(Jfs.returnJf(A.proc("set"), A.symbolIn("set", "o")), nullptr);
  EXPECT_EQ(Jfs.Stats.NumReturn, 0u);
}

TEST(JumpFunctionBuilder, RjfRecoveryFeedsForwardJfs) {
  // The §3.2 two-evaluation scheme: set(v) makes v=4 via the RJF, so the
  // forward JF at use(v) is the constant 4.
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call set(v)
  call use(v)
end
proc set(o)
  o = 4
end
proc use(p)
  print p
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::IntraConst);
  const auto &Site = siteJfs(A, Jfs, "main", 1);
  ASSERT_TRUE(Site.Args[0].isConst());
  EXPECT_EQ(Site.Args[0].constValue(), 4);
}

TEST(JumpFunctionBuilder, RjfDependingOnCallerParamIsNotConstant) {
  // §3.2: "return jump functions that depend on parameters to the
  // calling procedure can never be evaluated as constant."
  FullAnalysis A = analyze(R"(proc main()
  integer v
  read v
  call twice(v)
  call use(v)
end
proc twice(o)
  o = o * 2
end
proc use(p)
  print p
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  const auto &Site = siteJfs(A, Jfs, "main", 1);
  EXPECT_TRUE(Site.Args[0].isBottom());
}

TEST(JumpFunctionBuilder, CalleeKeyForKillBasics) {
  FullAnalysis A = analyze(R"(global g
proc main()
  integer x
  call f(x, g)
end
proc f(a, b)
  a = 1
  b = 2
  g = 3
end
)");
  const Function &Main = A.function("main");
  const Instr *Call = nullptr;
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs)
      if (In.Op == Opcode::Call)
        Call = &In;
  ASSERT_NE(Call, nullptr);

  // x binds to formal a.
  auto KeyX = ProgramJumpFunctions::calleeKeyForKill(
      *Call, A.symbolIn("main", "x"), A.Symbols);
  ASSERT_TRUE(KeyX.has_value());
  EXPECT_EQ(*KeyX, A.symbolIn("f", "a"));
  // g is both a global and a by-ref actual: ambiguous.
  EXPECT_FALSE(ProgramJumpFunctions::calleeKeyForKill(
                   *Call, A.symbol("g"), A.Symbols)
                   .has_value());
}

TEST(JumpFunctionBuilder, CalleeKeyForKillDuplicateActualIsAmbiguous) {
  FullAnalysis A = analyze(R"(proc main()
  integer x
  call f(x, x)
end
proc f(a, b)
  a = 1
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs)
      if (In.Op == Opcode::Call)
        EXPECT_FALSE(ProgramJumpFunctions::calleeKeyForKill(
                         In, A.symbolIn("main", "x"), A.Symbols)
                         .has_value());
}

TEST(JumpFunctionBuilder, PureGlobalKillKeyIsItself) {
  FullAnalysis A = analyze(R"(global g
proc main()
  call f()
end
proc f()
  g = 1
end
)");
  const Function &Main = A.function("main");
  for (BlockId B = 0; B != Main.numBlocks(); ++B)
    for (const Instr &In : Main.block(B).Instrs)
      if (In.Op == Opcode::Call) {
        auto Key = ProgramJumpFunctions::calleeKeyForKill(
            In, A.symbol("g"), A.Symbols);
        ASSERT_TRUE(Key.has_value());
        EXPECT_EQ(*Key, A.symbol("g"));
      }
}

TEST(JumpFunctionBuilder, StatsCountForms) {
  FullAnalysis A = analyze(R"(global g
proc main()
  integer k
  g = 2
  k = 3
  call f(1, k, g)
end
proc f(a, b, c)
  call leaf(a, a + b)
end
proc leaf(x, y)
  print x + y
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  // Forward JFs exist for every (site, formal) and (site, global) pair.
  size_t Sites = A.CG->numCallSites();
  size_t Expected = 0;
  for (ProcId P = 0; P != A.CG->numProcs(); ++P)
    for (const CallSite &S : A.CG->callSitesIn(P))
      Expected += A.Symbols.formals(S.Callee).size() +
                  A.Symbols.globalScalars().size();
  (void)Sites;
  EXPECT_EQ(Jfs.Stats.NumForward, Expected);
  EXPECT_EQ(Jfs.Stats.NumForward,
            Jfs.Stats.NumForwardConst + Jfs.Stats.NumForwardPassThrough +
                Jfs.Stats.NumForwardPoly + Jfs.Stats.NumForwardBottom);
  EXPECT_GT(Jfs.Stats.NumForwardPoly, 0u);
  EXPECT_GE(Jfs.Stats.avgPolySupport(), 1.0);
}

TEST(JumpFunctionBuilder, UnreachableProcsGetNoSiteJfs) {
  FullAnalysis A = analyze(R"(proc main()
end
proc orphan()
  call main()
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial);
  EXPECT_TRUE(Jfs.PerSite[A.proc("orphan")].empty());
}

TEST(JumpFunctionBuilder, WithoutModLeafRjfStillWorks) {
  // DESIGN.md: without MOD, return jump functions of call-free
  // procedures survive; anything with a call inside degrades.
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call set(v)
  call use(v)
end
proc set(o)
  o = 9
end
proc use(p)
  print p
end
)");
  ProgramJumpFunctions Jfs = build(A, JumpFunctionKind::Polynomial,
                                   /*UseRjf=*/true, /*UseMod=*/false);
  const auto &Site = siteJfs(A, Jfs, "main", 1);
  ASSERT_TRUE(Site.Args[0].isConst());
  EXPECT_EQ(Site.Args[0].constValue(), 9);
}

TEST(JumpFunctionBuilder, WithoutModNonLeafRjfDegrades) {
  FullAnalysis A = analyze(R"(global g
proc main()
  g = 5
  call wrapper()
  call use()
end
proc wrapper()
  call noop()
end
proc noop()
end
proc use()
  print g
end
)");
  // With MOD, g survives the wrapper call; without, it dies (wrapper is
  // not a leaf, so no identity RJF can be evaluated).
  ProgramJumpFunctions WithMod = build(A, JumpFunctionKind::Polynomial);
  ProgramJumpFunctions NoMod = build(A, JumpFunctionKind::Polynomial,
                                     /*UseRjf=*/true, /*UseMod=*/false);
  // JFs for g at the 'use' call site (site index 1 in main).
  ASSERT_TRUE(
      siteJfs(A, WithMod, "main", 1).Globals[0].isConst());
  EXPECT_TRUE(siteJfs(A, NoMod, "main", 1).Globals[0].isBottom());
}
