//===- tests/AstPrinterTests.cpp - lang/AstPrinter unit tests -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(AstPrinter, PrintsDeclarations) {
  auto Ctx = parseOk("program p\nglobal n = 4\narray a(8)\nproc main()\n"
                     "  integer i, j\n  array w(2)\nend\n");
  AstPrinter Printer;
  std::string Out = Printer.programToString(Ctx->program());
  EXPECT_NE(Out.find("program p"), std::string::npos);
  EXPECT_NE(Out.find("global n = 4"), std::string::npos);
  EXPECT_NE(Out.find("array a(8)"), std::string::npos);
  EXPECT_NE(Out.find("integer i, j"), std::string::npos);
  EXPECT_NE(Out.find("array w(2)"), std::string::npos);
}

TEST(AstPrinter, PrintedOutputReparses) {
  auto Ctx = parseOk(R"(global n
proc main()
  integer i
  n = 2
  do i = 1, 10, 2
    if (i % 2 == 0 and n > 1) then
      print i
    else
      call f(i, -n)
    end if
  end do
  while (n < 100)
    n = n * n
  end while
end
proc f(a, b)
  print a - b - 1
end
)");
  AstPrinter Printer;
  std::string Printed = Printer.programToString(Ctx->program());
  auto Ctx2 = parseOk(Printed); // Must be syntactically valid.
  EXPECT_EQ(Printer.programToString(Ctx2->program()), Printed);
}

TEST(AstPrinter, SubstitutionRewritesUses) {
  auto Ctx = parseOk("proc main()\n  integer x\n  x = 1\n  print x\nend\n");
  // Find the VarRef use inside the print.
  const auto *Print = cast<PrintStmt>(Ctx->program().Procs[0]->Body[1]);
  const auto *Use = cast<VarRefExpr>(Print->value());

  SubstitutionMap Map;
  Map[Use->id()] = 42;
  AstPrinter Printer(&Map);
  std::string Out = Printer.programToString(Ctx->program());
  EXPECT_NE(Out.find("print 42"), std::string::npos);
  // The assignment target is a definition and must keep its name.
  EXPECT_NE(Out.find("x = 1"), std::string::npos);
}

TEST(AstPrinter, SubstitutionLeavesOtherUsesAlone) {
  auto Ctx = parseOk(
      "proc main()\n  integer x\n  x = 1\n  print x + x\nend\n");
  const auto *Print = cast<PrintStmt>(Ctx->program().Procs[0]->Body[1]);
  const auto *Sum = cast<BinaryExpr>(Print->value());
  SubstitutionMap Map;
  Map[Sum->lhs()->id()] = 7;
  AstPrinter Printer(&Map);
  std::string Out = Printer.programToString(Ctx->program());
  EXPECT_NE(Out.find("print 7 + x"), std::string::npos);
}

TEST(AstPrinter, ParenthesizesOnlyWhenNeeded) {
  auto Ctx = parseOk(
      "proc main()\n  integer x\n  x = (1 + 2) * (3 - 4)\nend\n");
  const auto *Assign = cast<AssignStmt>(Ctx->program().Procs[0]->Body[0]);
  AstPrinter Printer;
  EXPECT_EQ(Printer.exprToString(Assign->value()),
            "(1 + 2) * (3 - 4)");
}

TEST(AstPrinter, RightOperandOfSubParenthesized) {
  auto Ctx = parseOk(
      "proc main()\n  integer x\n  x = 1 - (2 - 3)\nend\n");
  const auto *Assign = cast<AssignStmt>(Ctx->program().Procs[0]->Body[0]);
  AstPrinter Printer;
  EXPECT_EQ(Printer.exprToString(Assign->value()), "1 - (2 - 3)");
}
