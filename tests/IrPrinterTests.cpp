//===- tests/IrPrinterTests.cpp - ir/IrPrinter unit tests -----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

TEST(IrPrinter, OperandRendering) {
  FullAnalysis A = analyze("global n\nproc main()\n  n = 1\nend\n");
  EXPECT_EQ(operandToString(Operand::makeConst(42), A.Symbols), "42");
  EXPECT_EQ(operandToString(Operand::makeConst(-3), A.Symbols), "-3");
  EXPECT_EQ(operandToString(Operand::makeVar(A.symbol("n")), A.Symbols),
            "n");
  EXPECT_EQ(operandToString(Operand::makeTemp(7), A.Symbols), "t7");
  EXPECT_EQ(operandToString(Operand(), A.Symbols), "<none>");
}

TEST(IrPrinter, FunctionDumpShowsInstructions) {
  FullAnalysis A = analyze(R"(array buf(8)
proc main()
  integer x, i
  x = 2 + 3
  buf(1) = x
  x = buf(1)
  read i
  print x
  if (x > 0) then
    call f(x)
  end if
end
proc f(p)
end
)");
  std::string Out = functionToString(A.function("main"), A.Symbols);
  EXPECT_NE(Out.find("func main"), std::string::npos);
  EXPECT_NE(Out.find("= 2 + 3"), std::string::npos);
  EXPECT_NE(Out.find("buf["), std::string::npos);
  EXPECT_NE(Out.find("= read"), std::string::npos);
  EXPECT_NE(Out.find("print"), std::string::npos);
  EXPECT_NE(Out.find("br "), std::string::npos);
  EXPECT_NE(Out.find("call @"), std::string::npos);
  EXPECT_NE(Out.find("ret"), std::string::npos);
  EXPECT_NE(Out.find("preds:"), std::string::npos);
}

TEST(IrPrinter, SsaDumpShowsVersionsAndPhis) {
  FullAnalysis A = analyze(R"(proc main()
  integer x, c
  read c
  x = 1
  if (c) then
    x = 2
  end if
  print x
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));
  std::string Out = ssaToString(Ssa, A.Symbols);
  EXPECT_NE(Out.find("[ssa]"), std::string::npos);
  EXPECT_NE(Out.find("entry:"), std::string::npos);
  EXPECT_NE(Out.find("= phi"), std::string::npos);
  EXPECT_NE(Out.find("exit:"), std::string::npos);
  // Versioned names look like "x.<id>".
  EXPECT_NE(Out.find("x."), std::string::npos);
}

TEST(IrPrinter, SsaDumpShowsCallKills) {
  FullAnalysis A = analyze(R"(proc main()
  integer v
  call set(v)
  print v
end
proc set(o)
  o = 1
end
)");
  const Function &F = A.function("main");
  DominatorTree DT(F);
  SsaForm Ssa(F, A.Symbols, DT, makeKillOracle(A.Symbols, A.MRI.get()));
  std::string Out = ssaToString(Ssa, A.Symbols);
  EXPECT_NE(Out.find("kill: v."), std::string::npos);
}

TEST(IrPrinter, EveryOpcodeHasASpelling) {
  // A rendering smoke test over a program exercising each opcode.
  FullAnalysis A = analyze(R"(array a(4)
proc main()
  integer x, i
  x = -1
  x = x + 1
  a(1) = x
  x = a(1)
  read x
  print x
  while (x > 0)
    x = x - 1
  end while
  do i = 1, 3
    print i
  end do
  call f()
  return
end
proc f()
end
)");
  for (const auto &F : A.M.Functions) {
    std::string Out = functionToString(*F, A.Symbols);
    EXPECT_EQ(Out.find("<bad>"), std::string::npos);
    EXPECT_EQ(Out.find("<none>"), std::string::npos);
  }
}
