//===- tests/InterpreterTests.cpp - Reference interpreter tests -----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the execution semantics documented in docs/LANGUAGE.md: the
/// interpreter is normative, so every rule the analyzer relies on (DO
/// trip counts, post-loop values, trap behavior, by-reference binding)
/// gets a direct test here.
///
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Parses, checks, and runs \p Source under \p Opts.
RunResult runProgram(const std::string &Source,
                     const RunOptions &Opts = RunOptions()) {
  DiagnosticEngine Diags;
  auto Ctx = parseProgram(Source, Diags);
  SymbolTable Symbols;
  if (!Diags.hasErrors())
    Symbols = Sema::run(*Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Interpreter Interp(Ctx->program(), Symbols);
  return Interp.run(Opts);
}

TEST(InterpreterTest, PrintAndArithmetic) {
  RunResult R = runProgram("proc main()\n"
                           "  print 2 + 3 * 4\n"
                           "  print (2 + 3) * 4\n"
                           "  print 7 / 2\n"
                           "  print 7 % 2\n"
                           "  print -7 / 2\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{14, 20, 3, 1, -3}));
}

TEST(InterpreterTest, ComparisonAndLogicalOperators) {
  RunResult R = runProgram("proc main()\n"
                           "  print 1 < 2\n"
                           "  print 2 <= 2\n"
                           "  print 3 == 4\n"
                           "  print 3 != 4\n"
                           "  print (1 < 2) and (2 < 1)\n"
                           "  print (1 < 2) or (2 < 1)\n"
                           "  print not (1 < 2)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{1, 1, 0, 1, 0, 1, 0}));
}

TEST(InterpreterTest, UninitializedVariablesReadZero) {
  RunResult R = runProgram("global g\n"
                           "proc main()\n"
                           "  integer x\n"
                           "  array a(4)\n"
                           "  print x\n"
                           "  print g\n"
                           "  print a(2)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{0, 0, 0}));
}

TEST(InterpreterTest, GlobalInitializersApply) {
  RunResult R = runProgram("global g = 42\n"
                           "proc main()\n"
                           "  print g\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{42}));
}

TEST(InterpreterTest, DoLoopTripCountAndPostLoopValue) {
  // After 'do i = 1, 3' the loop variable holds the first failing
  // value, 4 — the CFG lowering's semantics.
  RunResult R = runProgram("proc main()\n"
                           "  integer i\n"
                           "  do i = 1, 3\n"
                           "    print i\n"
                           "  end do\n"
                           "  print i\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(InterpreterTest, DoLoopZeroTripLeavesVarAtLo) {
  RunResult R = runProgram("proc main()\n"
                           "  integer i\n"
                           "  do i = 10, 2\n"
                           "    print i\n"
                           "  end do\n"
                           "  print i\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{10}));
}

TEST(InterpreterTest, DoLoopNegativeConstantStepDescends) {
  // A syntactically negative step flips the trip test direction.
  RunResult R = runProgram("proc main()\n"
                           "  integer i\n"
                           "  do i = 3, 1, -1\n"
                           "    print i\n"
                           "  end do\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{3, 2, 1}));
}

TEST(InterpreterTest, DoLoopNonConstantNegativeStepIsAscendingTest) {
  // The lowering decides the comparison direction from the step's
  // *syntactic* constancy only: a negative step hidden behind a
  // variable keeps the ascending test, so 'i <= hi' fails... never,
  // and the loop counts down until the step budget stops it. Here
  // lo > hi so the ascending test fails immediately: zero trips.
  RunResult R = runProgram("proc main()\n"
                           "  integer i, s\n"
                           "  s = 0 - 1\n"
                           "  do i = 3, 1, s\n"
                           "    print i\n"
                           "  end do\n"
                           "  print i\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{3}));
}

TEST(InterpreterTest, DoLoopCapturesBoundsOnce) {
  // hi and step are evaluated once on entry; changing them in the
  // body does not affect the iteration.
  RunResult R = runProgram("global h = 3\n"
                           "proc main()\n"
                           "  integer i\n"
                           "  do i = 1, h\n"
                           "    h = 100\n"
                           "    print i\n"
                           "  end do\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{1, 2, 3}));
}

TEST(InterpreterTest, WhileLoop) {
  RunResult R = runProgram("proc main()\n"
                           "  integer n\n"
                           "  n = 3\n"
                           "  while (n > 0)\n"
                           "    print n\n"
                           "    n = n - 1\n"
                           "  end while\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{3, 2, 1}));
}

TEST(InterpreterTest, IfElseifElse) {
  RunResult R = runProgram("proc classify(x)\n"
                           "  if (x < 0) then\n"
                           "    print 0 - 1\n"
                           "  elseif (x == 0) then\n"
                           "    print 0\n"
                           "  else\n"
                           "    print 1\n"
                           "  end if\n"
                           "end\n"
                           "proc main()\n"
                           "  call classify(0 - 5)\n"
                           "  call classify(0)\n"
                           "  call classify(5)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{-1, 0, 1}));
}

TEST(InterpreterTest, ByReferenceScalarActual) {
  // A plain scalar actual binds by reference: the callee's writes are
  // visible in the caller.
  RunResult R = runProgram("proc bump(x)\n"
                           "  x = x + 1\n"
                           "end\n"
                           "proc main()\n"
                           "  integer v\n"
                           "  v = 10\n"
                           "  call bump(v)\n"
                           "  print v\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{11}));
}

TEST(InterpreterTest, ExpressionActualIsByValue) {
  // An expression actual (even '(v)') is a temporary; callee writes
  // do not propagate back.
  RunResult R = runProgram("proc bump(x)\n"
                           "  x = x + 1\n"
                           "end\n"
                           "proc main()\n"
                           "  integer v\n"
                           "  v = 10\n"
                           "  call bump(v + 0)\n"
                           "  print v\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{10}));
}

TEST(InterpreterTest, ReturnExitsProcedureOnly) {
  RunResult R = runProgram("proc p()\n"
                           "  print 1\n"
                           "  return\n"
                           "  print 2\n"
                           "end\n"
                           "proc main()\n"
                           "  call p()\n"
                           "  print 3\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{1, 3}));
}

TEST(InterpreterTest, ArrayAssignAndRead) {
  RunResult R = runProgram("array g(8)\n"
                           "proc main()\n"
                           "  integer i\n"
                           "  array l(4)\n"
                           "  do i = 1, 4\n"
                           "    l(i) = i * i\n"
                           "  end do\n"
                           "  g(8) = l(2) + l(3)\n"
                           "  print g(8)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{13}));
}

TEST(InterpreterTest, DivideByZeroTraps) {
  RunResult R = runProgram("proc main()\n"
                           "  integer z\n"
                           "  print 1\n"
                           "  print 5 / z\n"
                           "  print 2\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::DivideByZero);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{1}));
  EXPECT_TRUE(R.TrapLoc.isValid());
}

TEST(InterpreterTest, ModuloByZeroTraps) {
  RunResult R = runProgram("proc main()\n"
                           "  integer z\n"
                           "  print 5 % z\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::DivideByZero);
}

TEST(InterpreterTest, ArrayBoundsTrap) {
  RunResult R = runProgram("proc main()\n"
                           "  array a(4)\n"
                           "  integer i\n"
                           "  i = 5\n"
                           "  print a(i)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::ArrayBounds);
  // Index 0 also traps: arrays are 1-based.
  RunResult R0 = runProgram("proc main()\n"
                            "  array a(4)\n"
                            "  integer i\n"
                            "  a(i) = 1\n"
                            "end\n");
  EXPECT_EQ(R0.Status, RunStatus::ArrayBounds);
}

TEST(InterpreterTest, SignedOverflowWraps) {
  // Arithmetic is wrapping two's complement — no UB, no trap.
  RunResult R = runProgram("proc main()\n"
                           "  integer big, i\n"
                           "  big = 1\n"
                           "  do i = 1, 63\n"
                           "    big = big * 2\n"
                           "  end do\n"
                           "  print big\n"
                           "  print big - 1\n"
                           "  print (0 - big) / (0 - 1)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  ASSERT_EQ(R.Prints.size(), 3u);
  EXPECT_EQ(R.Prints[0], INT64_MIN);
  EXPECT_EQ(R.Prints[1], INT64_MAX);
  // INT64_MIN / -1 wraps to INT64_MIN rather than trapping.
  EXPECT_EQ(R.Prints[2], INT64_MIN);
}

TEST(InterpreterTest, StepLimitStopsInfiniteLoop) {
  RunOptions Opts;
  Opts.Limits.MaxSteps = 1000;
  RunResult R = runProgram("proc main()\n"
                           "  while (1 == 1)\n"
                           "    print 7\n"
                           "  end while\n"
                           "end\n",
                           Opts);
  EXPECT_EQ(R.Status, RunStatus::StepLimit);
  EXPECT_TRUE(isResourceLimit(R.Status));
  EXPECT_GT(R.Prints.size(), 0u);
  EXPECT_LE(R.Steps, 1000u);
}

TEST(InterpreterTest, CallDepthLimitStopsRecursion) {
  RunOptions Opts;
  Opts.Limits.MaxCallDepth = 20;
  RunResult R = runProgram("proc down(n)\n"
                           "  print n\n"
                           "  call down(n + 1)\n"
                           "end\n"
                           "proc main()\n"
                           "  call down(1)\n"
                           "end\n",
                           Opts);
  EXPECT_EQ(R.Status, RunStatus::CallDepthLimit);
  EXPECT_TRUE(isResourceLimit(R.Status));
  // main is depth 1; 'down' occupies depths 2..20.
  EXPECT_EQ(R.Prints.size(), 19u);
}

TEST(InterpreterTest, BoundedRecursionCompletes) {
  RunResult R = runProgram("proc fact(n, out)\n"
                           "  integer sub\n"
                           "  if (n <= 1) then\n"
                           "    out = 1\n"
                           "  else\n"
                           "    call fact(n - 1, sub)\n"
                           "    out = n * sub\n"
                           "  end if\n"
                           "end\n"
                           "proc main()\n"
                           "  integer r\n"
                           "  call fact(6, r)\n"
                           "  print r\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{720}));
}

TEST(InterpreterTest, ReadStreamIsSeededAndPositional) {
  const std::string Source = "proc main()\n"
                             "  integer a, b, c\n"
                             "  read a\n"
                             "  read b\n"
                             "  read c\n"
                             "  print a\n"
                             "  print b\n"
                             "  print c\n"
                             "end\n";
  RunOptions S1;
  S1.ReadSeed = 1;
  RunResult R1 = runProgram(Source, S1);
  RunResult R1Again = runProgram(Source, S1);
  EXPECT_EQ(R1.Prints, R1Again.Prints);
  EXPECT_EQ(R1.ReadsConsumed, 3u);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(R1.Prints[I], readStreamValue(1, I));

  RunOptions S2;
  S2.ReadSeed = 2;
  RunResult R2 = runProgram(Source, S2);
  EXPECT_NE(R1.Prints, R2.Prints) << "seeds should change the stream";
}

TEST(InterpreterTest, ReadStreamValuesCoverZeroAndNegatives) {
  bool SawZero = false, SawNegative = false, SawPositive = false;
  for (uint64_t I = 0; I != 500; ++I) {
    int64_t V = readStreamValue(7, I);
    EXPECT_GE(V, -8);
    EXPECT_LE(V, 32);
    SawZero = SawZero || V == 0;
    SawNegative = SawNegative || V < 0;
    SawPositive = SawPositive || V > 0;
  }
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(SawNegative);
  EXPECT_TRUE(SawPositive);
}

TEST(InterpreterTest, GlobalsSharedAcrossProcedures) {
  RunResult R = runProgram("global counter\n"
                           "proc tick()\n"
                           "  counter = counter + 1\n"
                           "end\n"
                           "proc main()\n"
                           "  call tick()\n"
                           "  call tick()\n"
                           "  call tick()\n"
                           "  print counter\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{3}));
}

TEST(InterpreterTest, LocalsAreFreshPerActivation) {
  RunResult R = runProgram("proc p(depth)\n"
                           "  integer l\n"
                           "  l = depth\n"
                           "  if (depth < 3) then\n"
                           "    call p(depth + 1)\n"
                           "  end if\n"
                           "  print l\n"
                           "end\n"
                           "proc main()\n"
                           "  call p(1)\n"
                           "end\n");
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.Prints, (std::vector<int64_t>{3, 2, 1}));
}

TEST(InterpreterTest, OnVarUseHookReportsReads) {
  auto Ctx = parseOk("proc main()\n"
                     "  integer x\n"
                     "  x = 5\n"
                     "  print x + x\n"
                     "end\n");
  DiagnosticEngine Diags;
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  Interpreter Interp(Ctx->program(), Symbols);
  unsigned Uses = 0;
  ExecHooks Hooks;
  Hooks.OnVarUse = [&](ExprId, int64_t V) {
    ++Uses;
    EXPECT_EQ(V, 5);
  };
  RunResult R = Interp.run(RunOptions(), &Hooks);
  EXPECT_EQ(R.Status, RunStatus::Ok);
  // 'x' is read twice in the print; the assignment target is a def,
  // not a use.
  EXPECT_EQ(Uses, 2u);
}

TEST(InterpreterTest, OnProcEntryHookSeesBoundFormals) {
  auto Ctx = parseOk("global g = 9\n"
                     "proc p(a, b)\n"
                     "  print a\n"
                     "end\n"
                     "proc main()\n"
                     "  call p(3, 4)\n"
                     "end\n");
  DiagnosticEngine Diags;
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  Interpreter Interp(Ctx->program(), Symbols);
  auto PId = Ctx->program().findProc("p");
  ASSERT_TRUE(PId.has_value());
  unsigned Entries = 0;
  ExecHooks Hooks;
  Hooks.OnProcEntry =
      [&](ProcId Pid,
          const std::function<const int64_t *(SymbolId)> &Lookup) {
        if (Pid != *PId)
          return;
        ++Entries;
        const auto &Formals = Symbols.formals(Pid);
        ASSERT_EQ(Formals.size(), 2u);
        const int64_t *A = Lookup(Formals[0]);
        const int64_t *B = Lookup(Formals[1]);
        ASSERT_NE(A, nullptr);
        ASSERT_NE(B, nullptr);
        EXPECT_EQ(*A, 3);
        EXPECT_EQ(*B, 4);
        for (SymbolId G : Symbols.globalScalars()) {
          const int64_t *Cell = Lookup(G);
          ASSERT_NE(Cell, nullptr);
          EXPECT_EQ(*Cell, 9);
        }
      };
  RunResult R = Interp.run(RunOptions(), &Hooks);
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(Entries, 1u);
}

TEST(InterpreterTest, RunnerIsReusableAndDeterministic) {
  auto Ctx = parseOk("proc main()\n"
                     "  integer x\n"
                     "  read x\n"
                     "  print x * x\n"
                     "end\n");
  DiagnosticEngine Diags;
  SymbolTable Symbols = Sema::run(*Ctx, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  Interpreter Interp(Ctx->program(), Symbols);
  RunOptions Opts;
  Opts.ReadSeed = 11;
  RunResult A = Interp.run(Opts);
  RunResult B = Interp.run(Opts);
  EXPECT_EQ(A.Prints, B.Prints);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Status, B.Status);
}

} // namespace
