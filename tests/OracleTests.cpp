//===- tests/OracleTests.cpp - Translation-validation oracle tests --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/Oracle.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// A program where the analyzer proves plenty: constant formals, a
/// constant global, a foldable branch, and a substitutable use.
const char *RichSource = "global mode = 2\n"
                         "proc work(k, scale)\n"
                         "  integer t\n"
                         "  t = k * scale\n"
                         "  if (mode == 2) then\n"
                         "    print t + mode\n"
                         "  else\n"
                         "    print 0 - t\n"
                         "  end if\n"
                         "end\n"
                         "proc main()\n"
                         "  integer i\n"
                         "  do i = 1, 4\n"
                         "    call work(7, i)\n"
                         "  end do\n"
                         "  call work(7, 100)\n"
                         "end\n";

TEST(OracleTest, ValidatesRichProgram) {
  OracleOptions Opts;
  OracleResult R = validateTranslation(RichSource, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TraceDivergences, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
  EXPECT_GT(R.RunsExecuted, 0u);
  EXPECT_GT(R.TraceComparisons, 0u);
  // 'k' is the constant 7 at both sites, so the oracle must have
  // checked substituted uses and CONSTANTS(work) entries.
  EXPECT_GT(R.SubstitutedUseChecks, 0u);
  EXPECT_GT(R.EntryConstantChecks, 0u);
}

TEST(OracleTest, ValidatesUnderCompletePropagation) {
  OracleOptions Opts;
  Opts.Pipeline.CompletePropagation = true;
  OracleResult R = validateTranslation(RichSource, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.TraceDivergences, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(OracleTest, ValidatesEveryJumpFunctionKind) {
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    OracleOptions Opts;
    Opts.Pipeline.Kind = Kind;
    OracleResult R = validateTranslation(RichSource, Opts);
    EXPECT_TRUE(R.Ok) << jumpFunctionKindName(Kind) << ": " << R.Error;
  }
}

TEST(OracleTest, ValidatesInlinerAndCloning) {
  OracleOptions Opts;
  Opts.CheckInliner = true;
  Opts.CheckCloning = true;
  OracleResult R = validateTranslation(RichSource, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  // Reference + analyzed + transformed + inlined + cloned per seed.
  EXPECT_GE(R.RunsExecuted, 5u * 2u);
}

TEST(OracleTest, ReadDependentProgram) {
  // Values flowing from READ are BOTTOM; the oracle still checks that
  // traces agree on the shared input stream.
  OracleOptions Opts;
  Opts.Pipeline.CompletePropagation = true;
  OracleResult R = validateTranslation("proc main()\n"
                                       "  integer x\n"
                                       "  read x\n"
                                       "  if (x > 100) then\n"
                                       "    print 1\n"
                                       "  else\n"
                                       "    print x\n"
                                       "  end if\n"
                                       "end\n",
                                       Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(OracleTest, ResourceLimitedRunUsesPrefixRule) {
  // The program never terminates; every run hits the step budget.
  // Prefix agreement (not exact equality) must apply, so validation
  // still passes even though DCE may change the step count.
  OracleOptions Opts;
  Opts.Limits.MaxSteps = 2000;
  Opts.Pipeline.CompletePropagation = true;
  OracleResult R = validateTranslation("proc main()\n"
                                       "  integer n\n"
                                       "  while (0 == 0)\n"
                                       "    n = n + 1\n"
                                       "    print n\n"
                                       "  end while\n"
                                       "end\n",
                                       Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.TraceComparisons, 0u);
}

TEST(OracleTest, TrappingProgramStillValidates) {
  // A genuine trap (divide by zero) is semantics: the transformed
  // programs must trap with an identical trace prefix.
  OracleOptions Opts;
  Opts.CheckInliner = true;
  OracleResult R = validateTranslation("proc div(a, b)\n"
                                       "  print a / b\n"
                                       "end\n"
                                       "proc main()\n"
                                       "  integer z\n"
                                       "  print 1\n"
                                       "  call div(10, z)\n"
                                       "end\n",
                                       Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(OracleTest, RejectsUnparsableSource) {
  OracleResult R = validateTranslation("proc main(\n", OracleOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(R.RunsExecuted, 0u);
}

TEST(OracleTest, CustomSeedsAreHonored) {
  OracleOptions Opts;
  Opts.ReadSeeds = {3, 4, 5, 6};
  OracleResult R = validateTranslation("proc main()\n"
                                       "  integer x\n"
                                       "  read x\n"
                                       "  print x\n"
                                       "end\n",
                                       Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  // Reference + analyzed replay + transformed source, per seed.
  EXPECT_EQ(R.RunsExecuted, 3u * 4u);
}

TEST(OracleTest, ZeroTripDoFoldValidatesUnderCompletePropagation) {
  // Regression companion to the DCE aliasing fix: a provably zero-trip
  // DO loop is folded to its variable initialization; the oracle
  // checks the folded program still prints the post-loop value.
  OracleOptions Opts;
  Opts.Pipeline.CompletePropagation = true;
  OracleResult R = validateTranslation("proc main()\n"
                                       "  integer i\n"
                                       "  do i = 10, 2\n"
                                       "    print i\n"
                                       "  end do\n"
                                       "  print i\n"
                                       "end\n",
                                       Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
}

} // namespace
