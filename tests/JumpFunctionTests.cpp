//===- tests/JumpFunctionTests.cpp - ipcp/JumpFunction unit tests ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ipcp/JumpFunction.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Environment mapping symbol 1 -> 10, symbol 2 -> bottom, rest top.
LatticeValue testEnv(SymbolId Sym) {
  if (Sym == 1)
    return LatticeValue::constant(10);
  if (Sym == 2)
    return LatticeValue::bottom();
  return LatticeValue::top();
}

} // namespace

TEST(JumpFunction, BottomEvaluatesToBottom) {
  JumpFunction J = JumpFunction::bottom();
  EXPECT_TRUE(J.isBottom());
  EXPECT_TRUE(J.eval(testEnv).isBottom());
  EXPECT_TRUE(J.support().empty());
}

TEST(JumpFunction, ConstIgnoresEnvironment) {
  JumpFunction J = JumpFunction::constant(99);
  EXPECT_TRUE(J.isConst());
  EXPECT_EQ(J.constValue(), 99);
  LatticeValue V = J.eval(testEnv);
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 99);
  EXPECT_TRUE(J.support().empty());
}

TEST(JumpFunction, PassThroughReadsEnvironment) {
  JumpFunction J = JumpFunction::passThrough(1);
  EXPECT_EQ(J.support(), std::vector<SymbolId>{1});
  LatticeValue V = J.eval(testEnv);
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 10);
  EXPECT_TRUE(JumpFunction::passThrough(2).eval(testEnv).isBottom());
  EXPECT_TRUE(JumpFunction::passThrough(3).eval(testEnv).isTop());
}

TEST(JumpFunction, PolynomialEvaluation) {
  VnContext Ctx;
  // (p1 * 2) + 5 with p1 = 10 -> 25.
  const VnExpr *E = Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Mul, Ctx.getParam(1), Ctx.getConst(2)),
      Ctx.getConst(5));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  EXPECT_EQ(J.support(), std::vector<SymbolId>{1});
  LatticeValue V = J.eval(testEnv);
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), 25);
}

TEST(JumpFunction, PolynomialWithBottomInputIsBottom) {
  VnContext Ctx;
  const VnExpr *E =
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(1), Ctx.getParam(2));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  EXPECT_TRUE(J.eval(testEnv).isBottom());
  EXPECT_EQ(J.support().size(), 2u);
}

TEST(JumpFunction, PolynomialWithTopInputIsTop) {
  VnContext Ctx;
  const VnExpr *E =
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(1), Ctx.getParam(3));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  EXPECT_TRUE(J.eval(testEnv).isTop());
}

TEST(JumpFunction, PolynomialDivisionByZeroAtEvalIsBottom) {
  VnContext Ctx;
  // p1 / (p1 - 10): with p1 = 10 the divisor is zero.
  const VnExpr *E = Ctx.getBinary(
      BinaryOp::Div, Ctx.getParam(1),
      Ctx.getBinary(BinaryOp::Sub, Ctx.getParam(1), Ctx.getConst(10)));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  EXPECT_TRUE(J.eval(testEnv).isBottom());
}

TEST(JumpFunction, UnaryInPolynomial) {
  VnContext Ctx;
  const VnExpr *E = Ctx.getUnary(
      UnaryOp::Neg, Ctx.getBinary(BinaryOp::Add, Ctx.getParam(1),
                                  Ctx.getConst(1)));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  LatticeValue V = J.eval(testEnv);
  ASSERT_TRUE(V.isConst());
  EXPECT_EQ(V.value(), -11);
}

TEST(JumpFunction, CloneIsIndependentAndEqual) {
  VnContext Ctx;
  const VnExpr *E =
      Ctx.getBinary(BinaryOp::Mul, Ctx.getParam(1), Ctx.getConst(3));
  JumpFunction J = JumpFunction::polynomial(JfExpr::fromVn(E));
  JumpFunction K = J.clone();
  EXPECT_EQ(K.form(), JumpFunction::Form::Poly);
  EXPECT_EQ(K.eval(testEnv).value(), 30);
  EXPECT_EQ(K.support(), J.support());
}

//===----------------------------------------------------------------------===//
// classify(): the kind hierarchy of §3.1.
//===----------------------------------------------------------------------===//

TEST(JumpFunctionClassify, LiteralOnlyAcceptsLiteralOperands) {
  VnContext Ctx;
  const VnExpr *C = Ctx.getConst(5);
  JumpFunction FromLiteral =
      JumpFunction::classify(JumpFunctionKind::Literal, C, true);
  EXPECT_TRUE(FromLiteral.isConst());
  // A constant-folded expression is not a literal at the call site.
  JumpFunction FromFolded =
      JumpFunction::classify(JumpFunctionKind::Literal, C, false);
  EXPECT_TRUE(FromFolded.isBottom());
}

TEST(JumpFunctionClassify, IntraConstUsesGcp) {
  VnContext Ctx;
  const VnExpr *C = Ctx.getConst(5);
  EXPECT_TRUE(JumpFunction::classify(JumpFunctionKind::IntraConst, C,
                                     false)
                  .isConst());
  // But a pass-through parameter is beyond it.
  EXPECT_TRUE(JumpFunction::classify(JumpFunctionKind::IntraConst,
                                     Ctx.getParam(1), false)
                  .isBottom());
}

TEST(JumpFunctionClassify, PassThroughRecognizesParams) {
  VnContext Ctx;
  JumpFunction J = JumpFunction::classify(JumpFunctionKind::PassThrough,
                                          Ctx.getParam(4), false);
  EXPECT_EQ(J.form(), JumpFunction::Form::PassThrough);
  EXPECT_EQ(J.support(), std::vector<SymbolId>{4});
  // But a polynomial is beyond it.
  const VnExpr *Poly =
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(4), Ctx.getConst(1));
  EXPECT_TRUE(JumpFunction::classify(JumpFunctionKind::PassThrough, Poly,
                                     false)
                  .isBottom());
}

TEST(JumpFunctionClassify, PolynomialAcceptsParamExprs) {
  VnContext Ctx;
  const VnExpr *Poly =
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(4), Ctx.getConst(1));
  JumpFunction J =
      JumpFunction::classify(JumpFunctionKind::Polynomial, Poly, false);
  EXPECT_EQ(J.form(), JumpFunction::Form::Poly);
  // Opaque anywhere defeats it.
  const VnExpr *Mixed =
      Ctx.getBinary(BinaryOp::Add, Ctx.getParam(4), Ctx.makeOpaque());
  EXPECT_TRUE(JumpFunction::classify(JumpFunctionKind::Polynomial, Mixed,
                                     false)
                  .isBottom());
}

TEST(JumpFunctionClassify, HierarchyIsMonotone) {
  // Whatever a weaker kind transmits, every stronger kind transmits too
  // (paper §3.1: each class subsumes the previous).
  VnContext Ctx;
  std::vector<const VnExpr *> Exprs = {
      Ctx.getConst(3), Ctx.getParam(1),
      Ctx.getBinary(BinaryOp::Mul, Ctx.getParam(1), Ctx.getConst(2)),
      Ctx.makeOpaque()};
  std::vector<JumpFunctionKind> Kinds = {
      JumpFunctionKind::Literal, JumpFunctionKind::IntraConst,
      JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial};
  for (const VnExpr *E : Exprs) {
    bool PrevTransmits = false;
    for (JumpFunctionKind Kind : Kinds) {
      bool Transmits =
          !JumpFunction::classify(Kind, E, false).isBottom();
      EXPECT_TRUE(Transmits || !PrevTransmits)
          << "kind hierarchy regressed";
      PrevTransmits = Transmits;
    }
  }
}

TEST(JumpFunction, Rendering) {
  FullAnalysis A = analyze("global n\nproc main()\n  n = 1\nend\n");
  VnContext Ctx;
  EXPECT_EQ(JumpFunction::bottom().str(A.Symbols), "_|_");
  EXPECT_EQ(JumpFunction::constant(5).str(A.Symbols), "5");
  EXPECT_EQ(JumpFunction::passThrough(A.symbol("n")).str(A.Symbols),
            "passthrough(n)");
  const VnExpr *E = Ctx.getBinary(BinaryOp::Add,
                                  Ctx.getParam(A.symbol("n")),
                                  Ctx.getConst(1));
  // Commutative operands are canonicalized by creation order.
  EXPECT_EQ(JumpFunction::polynomial(JfExpr::fromVn(E)).str(A.Symbols),
            "poly((1 + n))");
}

TEST(JumpFunctionKindNames, MatchThePaper) {
  EXPECT_STREQ(jumpFunctionKindName(JumpFunctionKind::Literal),
               "literal");
  EXPECT_STREQ(jumpFunctionKindName(JumpFunctionKind::IntraConst),
               "intraprocedural");
  EXPECT_STREQ(jumpFunctionKindName(JumpFunctionKind::PassThrough),
               "pass-through");
  EXPECT_STREQ(jumpFunctionKindName(JumpFunctionKind::Polynomial),
               "polynomial");
}
