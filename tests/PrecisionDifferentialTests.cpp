//===- tests/PrecisionDifferentialTests.cpp - The precision wall ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
// The precision tier's contract, pinned differentially against the
// classic analysis ('check-precision' label; tools/verify.sh runs it
// under the default and asan presets):
//
//   * Inclusion soundness. Per procedure, every CONSTANTS(p) entry the
//     flow-insensitive aliasing rule proves is also proved — with the
//     same value — under flow-sensitive aliasing, and every entry the
//     pessimistic numbering proves survives the optimistic one. Checked
//     over all 12 suite programs and a 200+-seed random sweep.
//
//   * Ground truth. The substitutions only the precision tier recovers
//     (the f(v,v) alias pattern, constants funneled through loop-phi
//     swaps) are validated by the translation-validation oracle, so a
//     flow-sensitivity bug cannot hide behind the inclusion direction.
//
//   * Toggle-off identity. With both flags off, a session previously
//     warmed by precision-tier cells still produces results
//     byte-identical to a cold classic run — the new passes leave no
//     residue in shared analysis state.
//
//===----------------------------------------------------------------------===//

#include "exec/Oracle.h"
#include "ipcp/AnalysisSession.h"
#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

using namespace ipcp;

namespace {

PipelineOptions fsaOpts() {
  PipelineOptions Opts;
  Opts.FlowSensitiveAlias = true;
  return Opts;
}

PipelineOptions ogvnOpts() {
  PipelineOptions Opts;
  Opts.OptimisticVn = true;
  return Opts;
}

PipelineResult runOk(const std::string &Source, const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

/// True when every CONSTANTS(p) entry of \p Weak also appears, with the
/// same value, in \p Strong (procedures matched by name). On failure
/// \p Witness names the lost entry. Same-value matching matters: an
/// upgrade that "finds" a constant with a different value is a soundness
/// bug, not extra precision.
bool constantsIncluded(const PipelineResult &Weak,
                       const PipelineResult &Strong, std::string &Witness) {
  for (size_t P = 0; P != Weak.ProcNames.size(); ++P) {
    if (Weak.Constants[P].empty())
      continue;
    const std::vector<std::pair<std::string, int64_t>> *Sup = nullptr;
    for (size_t Q = 0; Q != Strong.ProcNames.size(); ++Q)
      if (Strong.ProcNames[Q] == Weak.ProcNames[P]) {
        Sup = &Strong.Constants[Q];
        break;
      }
    for (const auto &Entry : Weak.Constants[P]) {
      bool Found = false;
      if (Sup)
        for (const auto &Have : *Sup)
          if (Have == Entry) {
            Found = true;
            break;
          }
      if (!Found) {
        Witness = Weak.ProcNames[P] + ": " + Entry.first + "=" +
                  std::to_string(Entry.second);
        return false;
      }
    }
  }
  return true;
}

void expectPrecisionInclusion(const std::string &Source,
                              const std::string &Label) {
  PipelineResult Base = runOk(Source, PipelineOptions());
  PipelineResult Fsa = runOk(Source, fsaOpts());
  PipelineResult Ogvn = runOk(Source, ogvnOpts());
  std::string Witness;
  EXPECT_TRUE(constantsIncluded(Base, Fsa, Witness))
      << Label << ": flow-sensitive aliasing lost " << Witness;
  EXPECT_TRUE(constantsIncluded(Base, Ogvn, Witness))
      << Label << ": optimistic numbering lost " << Witness;
}

/// Every deterministic field of a PipelineResult, rendered for
/// byte-identity comparisons (the ParallelPipelineTests notion).
std::string fingerprint(const PipelineResult &R) {
  std::ostringstream OS;
  OS << R.Ok << '|' << R.Error << '|' << R.SubstitutedConstants << '|'
     << R.ConstantPrints << '|' << R.KnownButIrrelevant << '|'
     << R.DceRounds << '|' << R.FoldedBranches << '|'
     << R.AliasPointsRefined << '|' << R.GvnPhiMerges << '\n';
  OS << "perproc:";
  for (unsigned N : R.PerProcSubstituted)
    OS << ' ' << N;
  OS << "\nconstants:\n";
  for (size_t P = 0; P != R.Constants.size(); ++P) {
    OS << "  [" << P << "]";
    for (const auto &[Name, Value] : R.Constants[P])
      OS << " (" << Name << ',' << Value << ')';
    OS << '\n';
  }
  std::map<ExprId, int64_t> Subs(R.Substitutions.begin(),
                                 R.Substitutions.end());
  OS << "subs:";
  for (const auto &[Id, Value] : Subs)
    OS << ' ' << Id << '=' << Value;
  OS << "\nsource:" << R.TransformedSource;
  return OS.str();
}

/// The f(v,v) recovery pattern: only the flow-sensitive tier may
/// substitute the read of b preceding the store through its alias.
const char *AliasRecoverySource = R"(proc main()
  integer v
  v = 1
  call f(v, v)
  print v
end
proc f(a, b)
  print b * 3
  a = b + 10
end
)";

/// A constant funneled through a loop-carried swap: only the optimistic
/// numbering proves the forwarded argument still equals the formal.
const char *SwapRecoverySource = R"(proc main()
  call h(9)
end
proc h(n)
  integer x
  integer y
  integer t
  integer i
  x = n
  y = n
  i = 0
  while (i < 2)
    t = x
    x = y
    y = t
    i = i + 1
  end while
  call leaf(x * 1)
end
proc leaf(p)
  print p * 2
  print p * 5
end
)";

} // namespace

//===----------------------------------------------------------------------===//
// Inclusion over the whole suite.
//===----------------------------------------------------------------------===//

class PrecisionSuiteTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PrecisionSuiteTest, ClassicConstantsSurviveEachUpgrade) {
  const WorkloadProgram &W = benchmarkSuite()[GetParam()];
  expectPrecisionInclusion(W.Source, W.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PrecisionSuiteTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Inclusion over a random sweep.
//===----------------------------------------------------------------------===//

TEST(PrecisionDifferential, RandomProgramsNeverLoseConstants) {
  // 220 seeds across three size/recursion profiles. The profiles rotate
  // so by-reference aliasing, globals, and recursion all appear.
  for (uint64_t Seed = 1; Seed <= 220; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed;
    Spec.Procs = 4 + int(Seed % 5);
    Spec.Globals = 1 + int(Seed % 4);
    Spec.AllowRecursion = Seed % 3 == 0;
    std::string Source = generateRandomProgram(Spec);
    expectPrecisionInclusion(Source, "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// The recovered substitutions, against ground truth.
//===----------------------------------------------------------------------===//

TEST(PrecisionDifferential, AliasRecoveryIsRealAndOracleValid) {
  PipelineResult Base = runOk(AliasRecoverySource, PipelineOptions());
  PipelineResult Fsa = runOk(AliasRecoverySource, fsaOpts());
  // The classic rule loses both formals for the whole body; the
  // flow-sensitive tier recovers exactly the two reads of b that precede
  // the store through a.
  EXPECT_EQ(Base.SubstitutedConstants, 0u);
  EXPECT_EQ(Fsa.SubstitutedConstants, 2u);
  EXPECT_GE(Fsa.AliasPointsRefined, 2u);

  OracleOptions OO;
  OO.Pipeline = fsaOpts();
  OracleResult R = validateTranslation(AliasRecoverySource, OO);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SubstitutedUseChecks, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(PrecisionDifferential, SwapRecoveryIsRealAndOracleValid) {
  PipelineResult Base = runOk(SwapRecoverySource, PipelineOptions());
  PipelineResult Ogvn = runOk(SwapRecoverySource, ogvnOpts());
  // The pessimistic numbering pins the loop phis opaque, so leaf's two
  // uses appear only under the optimistic pass.
  EXPECT_EQ(Ogvn.SubstitutedConstants, Base.SubstitutedConstants + 2);
  EXPECT_GT(Ogvn.GvnPhiMerges, 0u);

  OracleOptions OO;
  OO.Pipeline = ogvnOpts();
  OracleResult R = validateTranslation(SwapRecoverySource, OO);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SubstitutedUseChecks, 0u);
  EXPECT_EQ(R.ConstantMismatches, 0u);
}

TEST(PrecisionDifferential, SuiteGainersSurviveTheOracle) {
  // The two suite programs whose precision columns gain (doduc under
  // both upgrades, mdg under flow-sensitive aliasing) execute correctly
  // after the upgraded substitutions.
  for (const WorkloadProgram &P : benchmarkSuite()) {
    if (P.Name != "doduc" && P.Name != "mdg")
      continue;
    for (const PipelineOptions &Opts : {fsaOpts(), ogvnOpts()}) {
      OracleOptions OO;
      OO.Pipeline = Opts;
      OracleResult R = validateTranslation(P.Source, OO);
      EXPECT_TRUE(R.Ok) << P.Name << ": " << R.Error;
      EXPECT_EQ(R.ConstantMismatches, 0u) << P.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Toggle-off identity.
//===----------------------------------------------------------------------===//

TEST(PrecisionDifferential, WarmedSessionLeavesClassicResultsByteIdentical) {
  // Precision-tier cells must not perturb shared analysis state: after
  // fsa and ogvn runs warmed a session's caches (flow-alias info, a
  // 5-tuple-keyed jump-function base, optimistic numberings), a default
  // run over the same session is byte-identical to a cold classic run.
  for (size_t I : {size_t(1), size_t(5), size_t(11)}) { // doduc, mdg, trfd
    const WorkloadProgram &W = benchmarkSuite()[I];
    PipelineOptions Classic;
    Classic.EmitTransformedSource = true;
    std::string Cold = fingerprint(runOk(W.Source, Classic));

    DiagnosticEngine Diags;
    auto Ctx = parseProgram(W.Source, Diags);
    SymbolTable Symbols = Sema::run(*Ctx, Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
    AnalysisSession Session(*Ctx, Symbols);
    PipelineOptions Fsa = fsaOpts();
    Fsa.EmitTransformedSource = true;
    PipelineOptions Ogvn = ogvnOpts();
    Ogvn.EmitTransformedSource = true;
    ASSERT_TRUE(runPipelineOnSession(Session, Fsa).Ok);
    ASSERT_TRUE(runPipelineOnSession(Session, Ogvn).Ok);
    PipelineResult Warm = runPipelineOnSession(Session, Classic);
    ASSERT_TRUE(Warm.Ok) << Warm.Error;
    EXPECT_EQ(Cold, fingerprint(Warm)) << W.Name;
  }
}
