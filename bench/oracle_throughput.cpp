//===- bench/oracle_throughput.cpp - Interpreter + oracle throughput ------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How fast can we validate? The translation-validation oracle runs
/// every generated program several times per configuration, so its
/// throughput bounds how many seeds the fuzz sweep can afford. Measures:
///   * raw interpreter speed (steps/second) on a compute-heavy loop,
///   * interpreter speed on the benchmark suite programs,
///   * full validateTranslation() cost per suite program and per random
///     program, with and without complete propagation.
///
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "exec/Oracle.h"
#include "lang/Parser.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

using namespace ipcp;

namespace {

/// A checked program bundle the benchmarks can run repeatedly.
struct Runnable {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  std::unique_ptr<Interpreter> Interp;
};

Runnable prepare(const std::string &Source) {
  Runnable R;
  DiagnosticEngine Diags;
  R.Ctx = parseProgram(Source, Diags);
  if (!Diags.hasErrors())
    R.Symbols = Sema::run(*R.Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    exit(1);
  }
  R.Interp =
      std::make_unique<Interpreter>(R.Ctx->program(), R.Symbols);
  return R;
}

/// A tight arithmetic loop: ~5 steps per iteration, no traps.
const char *ComputeKernel = R"(proc main()
  integer i, acc
  do i = 1, 20000
    acc = acc + i * 3 - (i / 2)
    if (acc > 1000000) then
      acc = acc - 1000000
    end if
  end do
  print acc
end
)";

void BM_InterpreterSteps(benchmark::State &State) {
  Runnable R = prepare(ComputeKernel);
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult Run = R.Interp->run(RunOptions());
    if (Run.Status != RunStatus::Ok)
      State.SkipWithError("kernel trapped");
    Steps += Run.Steps;
    benchmark::DoNotOptimize(Run.Prints);
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterSteps);

void BM_InterpreterSuite(benchmark::State &State) {
  const WorkloadProgram &W = benchmarkSuite()[State.range(0)];
  State.SetLabel(W.Name);
  Runnable R = prepare(W.Source);
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult Run = R.Interp->run(RunOptions());
    Steps += Run.Steps;
    benchmark::DoNotOptimize(Run.Status);
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterSuite)->DenseRange(0, 11);

void BM_ValidateSuite(benchmark::State &State) {
  const WorkloadProgram &W = benchmarkSuite()[State.range(0)];
  State.SetLabel(W.Name);
  for (auto _ : State) {
    OracleResult R = validateTranslation(W.Source, OracleOptions());
    if (!R.Ok)
      State.SkipWithError("validation failed");
    benchmark::DoNotOptimize(R.RunsExecuted);
  }
}
BENCHMARK(BM_ValidateSuite)->DenseRange(0, 11);

void BM_ValidateRandom(benchmark::State &State) {
  RandomSpec Spec;
  Spec.Seed = 42;
  std::string Source = generateRandomProgram(Spec);
  OracleOptions Opts;
  Opts.Pipeline.CompletePropagation = State.range(0) != 0;
  Opts.Limits.MaxSteps = 50000;
  uint64_t Runs = 0;
  for (auto _ : State) {
    OracleResult R = validateTranslation(Source, Opts);
    if (!R.Ok)
      State.SkipWithError("validation failed");
    Runs += R.RunsExecuted;
  }
  State.SetLabel(State.range(0) ? "complete" : "plain");
  State.counters["runs/s"] = benchmark::Counter(
      static_cast<double>(Runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ValidateRandom)->Arg(0)->Arg(1);

void BM_ValidateWithTransforms(benchmark::State &State) {
  // The full check the fuzz sweep pays once per seed: inliner and
  // cloning included.
  RandomSpec Spec;
  Spec.Seed = 42;
  std::string Source = generateRandomProgram(Spec);
  OracleOptions Opts;
  Opts.CheckInliner = true;
  Opts.CheckCloning = true;
  Opts.Limits.MaxSteps = 50000;
  for (auto _ : State) {
    OracleResult R = validateTranslation(Source, Opts);
    if (!R.Ok)
      State.SkipWithError("validation failed");
    benchmark::DoNotOptimize(R.RunsExecuted);
  }
}
BENCHMARK(BM_ValidateWithTransforms);

} // namespace

BENCHMARK_MAIN();
