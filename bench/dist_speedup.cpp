//===- bench/dist_speedup.cpp - Distributed tier vs single process --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the distributed tier buys on the paper's own workload,
/// in two independent sections:
///
///   suite   the full (12 programs x 9 configs) batch: single-process
///           per-cell cold (the pre-distribution behavior BENCH_suite.json
///           records as "cold") vs runShardedSuite across 4 forked
///           ipcp-driver workers. Correctness is asserted, not reported:
///           the reassembled grid must be cell-for-cell identical.
///
///   router  0%-repeat load (every request a distinct random program)
///           through an ipcp-serve front tier: a fleet of 1 spawned
///           backend vs a fleet of 4, same client harness both ways, so
///           the comparison isolates scale-out rather than forwarding
///           overhead. Replies for the same request must be
///           byte-identical between the two fleets.
///
/// Timing gates are hardware-conditional and honest about it: process
/// parallelism cannot beat wall clock on a single core, so below 4
/// hardware threads the full-run gates relax to sanity bounds (sharded
/// no slower than 0.9x cold; routed no slower than 0.5x single) and the
/// JSON records the core count and the relaxation reason — the same
/// precedent tools/verify.sh sets for sanitizer presets. At >= 4 cores
/// the full gates are: sharded >= 2x cold, routed fleet >= 1.8x the
/// single backend. --smoke (ctest -L check-bench) shrinks the workload
/// and applies the sanity bounds only.
///
/// Results land in machine-readable JSON (--json=PATH, default
/// BENCH_dist.json). See EXPERIMENTS.md "Distributed analysis".
///
//===----------------------------------------------------------------------===//

#include "serve/Json.h"
#include "serve/Router.h"
#include "workloads/RandomProgram.h"
#include "workloads/ShardedSuite.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Grid identity between the single-process batch and the sharded one.
bool gridsIdentical(const SuiteRunResult &Local,
                    const ShardedSuiteResult &Sharded, size_t &Same) {
  bool Ok = Local.Cells.size() == Sharded.Cells.size();
  Same = 0;
  for (size_t I = 0; Ok && I != Local.Cells.size(); ++I) {
    const SuiteCell &A = Local.Cells[I];
    const ShardCellResult &B = Sharded.Cells[I];
    if (A.Program == B.Program && A.Config == B.Config && A.Ok == B.Ok &&
        A.SubstitutedConstants == B.SubstitutedConstants &&
        A.ConstantPrints == B.ConstantPrints) {
      ++Same;
      continue;
    }
    std::cerr << "FAIL: sharded diverged on " << A.Program << '/' << A.Config
              << '\n';
    Ok = false;
  }
  return Ok && Same == Local.Cells.size();
}

/// One closed-loop load run: \p Clients threads split \p Lines between
/// them and hammer \p R. Returns wall ms; replies land in \p Replies
/// (index-aligned with Lines).
double driveLoad(Router &R, const std::vector<std::string> &Lines,
                 unsigned Clients, std::vector<std::string> &Replies) {
  Replies.assign(Lines.size(), "");
  Clock::time_point Start = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Clients; ++T)
    Threads.emplace_back([&, T] {
      for (size_t I = T; I < Lines.size(); I += Clients)
        Replies[I] = R.handle(Lines[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  return msSince(Start);
}

std::string analyzeLine(size_t I, const std::string &Source) {
  return "{\"id\":\"q" + std::to_string(I) +
         "\",\"method\":\"analyze-source\",\"params\":{\"source\":" +
         JsonValue(Source).dump() + "}}";
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath = "BENCH_dist.json";
  unsigned SuiteWorkers = 4;
  unsigned FleetSize = 4;
  unsigned Clients = 4;
  unsigned Requests = 240;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg.rfind("--workers=", 0) == 0)
      SuiteWorkers =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 10, nullptr, 10));
    else if (Arg.rfind("--requests=", 0) == 0)
      Requests =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 11, nullptr, 10));
    else {
      std::cerr << "usage: dist_speedup [--smoke] [--json=PATH] "
                   "[--workers=N] [--requests=N]\n";
      return 1;
    }
  }
  if (Smoke)
    Requests = 48;

  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores == 0)
    Cores = 1;
  // Process parallelism cannot beat wall clock without cores to run on;
  // below 4 the full gates relax to sanity bounds (recorded in the
  // JSON), the way verify.sh relaxes timing gates under sanitizers.
  bool Relaxed = Smoke || Cores < 4;
  std::string GateReason =
      Smoke ? "smoke run: sanity bounds only"
      : Cores < 4
          ? "gate relaxed: " + std::to_string(Cores) +
                " hardware thread(s) < 4 — process parallelism cannot beat "
                "single-process wall clock here"
          : "full gates: >= 4 hardware threads";

  std::cout << "Distributed tier: sharded suite + serve router vs single "
               "process\n"
            << "cores=" << Cores << (Smoke ? " (smoke)" : "") << "\n\n";

  //===--------------------------------------------------------------------===//
  // Section 1: sharded suite vs single-process per-cell cold batch.
  //===--------------------------------------------------------------------===//

  const std::vector<WorkloadProgram> &Programs = extendedSuite();
  const std::vector<SuiteConfig> Configs = allConfigs();

  Clock::time_point ColdStart = Clock::now();
  SuiteRunResult Cold =
      runSuite(Programs, Configs, 1, 1, SuiteSharing::PerCell);
  double ColdMs = msSince(ColdStart);

  ShardedSuiteOptions SOpts;
  SOpts.NumWorkers = SuiteWorkers;
  SOpts.ConfigSet = "all";
#ifdef IPCP_DRIVER_PATH
  SOpts.Spawn.WorkerBinary = IPCP_DRIVER_PATH;
#endif
  ShardedSuiteResult Sharded = runShardedSuite(Programs, SOpts);
  if (!Sharded.Ok) {
    std::cerr << "FAIL: sharded suite run failed: " << Sharded.Error << '\n';
    return 1;
  }

  size_t SameCells = 0;
  bool SuiteIdentical = gridsIdentical(Cold, Sharded, SameCells);
  double SuiteSpeedup = Sharded.WallMs > 0 ? ColdMs / Sharded.WallMs : 0.0;
  std::printf("suite:  cold %8.2f ms, sharded(%u workers) %8.2f ms, "
              "speedup %.2fx, identical cells %zu/%zu\n",
              ColdMs, SuiteWorkers, Sharded.WallMs, SuiteSpeedup, SameCells,
              Cold.Cells.size());

  //===--------------------------------------------------------------------===//
  // Section 2: router fleet of 4 vs fleet of 1 on 0%-repeat load.
  //===--------------------------------------------------------------------===//

  // Every request is a distinct random program — 0% repeats, so neither
  // fleet gets reply-cache help and the comparison is pure compute
  // scale-out. Generated up front, outside the timed region.
  std::vector<std::string> Lines;
  Lines.reserve(Requests);
  for (size_t I = 0; I != Requests; ++I) {
    RandomSpec Spec;
    Spec.Seed = 1000 + I;
    Lines.push_back(analyzeLine(I, generateRandomProgram(Spec)));
  }

  double SingleMs = 0, RoutedMs = 0;
  size_t IdenticalReplies = 0;
  bool RouterOk = true;
  {
    std::vector<std::string> SingleReplies, RoutedReplies;
    for (unsigned Fleet : {1u, FleetSize}) {
      RouterOptions ROpts;
      ROpts.SpawnBackends = Fleet;
#ifdef IPCP_SERVE_PATH
      ROpts.ServeBinary = IPCP_SERVE_PATH;
#endif
      ROpts.BackendWorkers = 2;
      Router R(ROpts);
      std::string Error;
      if (!R.start(Error)) {
        std::cerr << "FAIL: cannot spawn a " << Fleet
                  << "-backend fleet: " << Error << '\n';
        return 1;
      }
      std::vector<std::string> &Replies =
          Fleet == 1 ? SingleReplies : RoutedReplies;
      double Wall = driveLoad(R, Lines, Clients, Replies);
      (Fleet == 1 ? SingleMs : RoutedMs) = Wall;
      R.shutdown();
    }
    for (size_t I = 0; I != Lines.size(); ++I) {
      if (SingleReplies[I] == RoutedReplies[I] && !SingleReplies[I].empty())
        ++IdenticalReplies;
      else {
        std::cerr << "FAIL: reply " << I
                  << " diverged between fleet sizes\n";
        RouterOk = false;
      }
    }
  }

  double SingleRps = SingleMs > 0 ? 1000.0 * Requests / SingleMs : 0.0;
  double RoutedRps = RoutedMs > 0 ? 1000.0 * Requests / RoutedMs : 0.0;
  double RouterSpeedup = SingleRps > 0 ? RoutedRps / SingleRps : 0.0;
  std::printf("router: 1 backend %7.1f rps, %u backends %7.1f rps, "
              "speedup %.2fx, identical replies %zu/%u\n",
              SingleRps, FleetSize, RoutedRps, RouterSpeedup,
              IdenticalReplies, Requests);
  std::printf("gates:  %s\n", GateReason.c_str());

  std::ofstream Json(JsonPath);
  if (!Json) {
    std::cerr << "error: cannot write '" << JsonPath << "'\n";
    return 1;
  }
  char Buf[512];
  Json << "{\n";
  Json << "  \"cores\": " << Cores
       << ", \"smoke\": " << (Smoke ? "true" : "false") << ",\n";
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"suite\": {\"cold_wall_ms\": %.3f, \"sharded_wall_ms\": %.3f, "
      "\"workers\": %u, \"speedup\": %.3f, \"identical_cells\": %zu, "
      "\"total_cells\": %zu, \"worker_crashes\": %u},\n",
      ColdMs, Sharded.WallMs, SuiteWorkers, SuiteSpeedup, SameCells,
      Cold.Cells.size(), Sharded.WorkerCrashes);
  Json << Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"router\": {\"single_rps\": %.2f, \"routed_rps\": %.2f, "
      "\"backends\": %u, \"clients\": %u, \"requests\": %u, "
      "\"speedup\": %.3f, \"identical_replies\": %zu},\n",
      SingleRps, RoutedRps, FleetSize, Clients, Requests, RouterSpeedup,
      IdenticalReplies);
  Json << Buf;
  Json << "  \"gates\": {\"relaxed\": " << (Relaxed ? "true" : "false")
       << ", \"reason\": " << JsonValue(GateReason).dump() << "}\n}\n";
  Json.flush();
  if (!Json) {
    std::cerr << "error: failed writing '" << JsonPath << "'\n";
    return 1;
  }
  std::cout << "wrote " << JsonPath << "\n";

  if (!SuiteIdentical) {
    std::cout << "RESULT: FAIL (sharded grid diverged from single-process)\n";
    return 1;
  }
  if (!RouterOk) {
    std::cout << "RESULT: FAIL (routed replies diverged between fleets)\n";
    return 1;
  }
  double SuiteGate = Relaxed ? 0.9 : 2.0;
  double RouterGate = Relaxed ? 0.5 : 1.8;
  if (SuiteSpeedup < SuiteGate) {
    std::cout << "RESULT: FAIL (suite speedup " << SuiteSpeedup
              << "x below the " << SuiteGate << "x gate)\n";
    return 1;
  }
  if (RouterSpeedup < RouterGate) {
    std::cout << "RESULT: FAIL (router speedup " << RouterSpeedup
              << "x below the " << RouterGate << "x gate)\n";
    return 1;
  }
  std::cout << "RESULT: OK\n";
  return 0;
}
