//===- bench/jf_cost_timing.cpp - Jump function cost study (§3.1.5) -------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.1.5 discusses the *costs* of the four forward jump
/// functions: literal is a textual scan; the other three pay O(N) for
/// SSA-based value numbering; polynomial's propagation cost carries an
/// extra |support| factor that "approaches 1" in practice. This bench
/// measures:
///   * construction time per kind (suite programs and synthetic scaling),
///   * interprocedural propagation time per kind,
///   * the average polynomial support size (reported as a counter).
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "ipcp/Pipeline.h"
#include "ir/CfgBuilder.h"
#include "lang/Parser.h"
#include "workloads/Suite.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <iostream>

using namespace ipcp;

namespace {

/// Everything that precedes jump-function generation, built once.
struct Prepared {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  Module M;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModRefInfo> MRI;
};

Prepared prepare(const std::string &Source) {
  Prepared P;
  DiagnosticEngine Diags;
  P.Ctx = parseProgram(Source, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    exit(1);
  }
  P.Symbols = Sema::run(*P.Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    exit(1);
  }
  P.M = buildModule(P.Ctx->program(), P.Symbols);
  P.CG = std::make_unique<CallGraph>(P.M, *P.Ctx->program().entryProc());
  P.MRI = std::make_unique<ModRefInfo>(P.M, P.Symbols, *P.CG);
  return P;
}

const std::string &suiteSource(const std::string &Name) {
  for (const WorkloadProgram &P : benchmarkSuite())
    if (P.Name == Name)
      return P.Source;
  std::cerr << "no suite program " << Name << "\n";
  exit(1);
}

JumpFunctionKind kindOf(int64_t Arg) {
  switch (Arg) {
  case 0:
    return JumpFunctionKind::Literal;
  case 1:
    return JumpFunctionKind::IntraConst;
  case 2:
    return JumpFunctionKind::PassThrough;
  default:
    return JumpFunctionKind::Polynomial;
  }
}

/// Construction cost per kind on the largest suite program (spec77).
void BM_Construction_spec77(benchmark::State &State) {
  static Prepared P = prepare(suiteSource("spec77"));
  JumpFunctionOptions Opts;
  Opts.Kind = kindOf(State.range(0));
  size_t Forward = 0;
  double AvgSupport = 0;
  for (auto _ : State) {
    ProgramJumpFunctions Jfs =
        buildJumpFunctions(P.M, P.Symbols, *P.CG, P.MRI.get(), Opts);
    Forward = Jfs.Stats.NumForward;
    AvgSupport = Jfs.Stats.avgPolySupport();
    benchmark::DoNotOptimize(Jfs);
  }
  State.SetLabel(jumpFunctionKindName(Opts.Kind));
  State.counters["forward_jfs"] = double(Forward);
  State.counters["avg_poly_support"] = AvgSupport;
}

/// Propagation cost per kind on spec77 (jump functions prebuilt).
void BM_Propagation_spec77(benchmark::State &State) {
  static Prepared P = prepare(suiteSource("spec77"));
  JumpFunctionOptions Opts;
  Opts.Kind = kindOf(State.range(0));
  ProgramJumpFunctions Jfs =
      buildJumpFunctions(P.M, P.Symbols, *P.CG, P.MRI.get(), Opts);
  unsigned Evals = 0;
  for (auto _ : State) {
    SolveResult R = solveConstants(P.Symbols, *P.CG, Jfs);
    Evals = R.JfEvaluations;
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(jumpFunctionKindName(Opts.Kind));
  State.counters["jf_evaluations"] = double(Evals);
}

/// Whole-analyzer cost per kind on spec77 (parse to counts).
void BM_EndToEnd_spec77(benchmark::State &State) {
  const std::string &Source = suiteSource("spec77");
  PipelineOptions Opts;
  Opts.Kind = kindOf(State.range(0));
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, Opts);
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(jumpFunctionKindName(Opts.Kind));
}

/// Scaling: polynomial construction + propagation on synthetic programs
/// of growing procedure count. The paper's §3.1.5 bound is O(N) in the
/// procedure size for construction; complexity should look near-linear.
void BM_Scaling_synthetic(benchmark::State &State) {
  SyntheticSpec Spec;
  Spec.Procs = static_cast<int>(State.range(0));
  std::string Source = generateSynthetic(Spec);
  Prepared P = prepare(Source);
  JumpFunctionOptions Opts;
  Opts.Kind = JumpFunctionKind::Polynomial;
  for (auto _ : State) {
    ProgramJumpFunctions Jfs =
        buildJumpFunctions(P.M, P.Symbols, *P.CG, P.MRI.get(), Opts);
    SolveResult R = solveConstants(P.Symbols, *P.CG, Jfs);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_Construction_spec77)->DenseRange(0, 3, 1);
BENCHMARK(BM_Propagation_spec77)->DenseRange(0, 3, 1);
BENCHMARK(BM_EndToEnd_spec77)->DenseRange(0, 3, 1);
BENCHMARK(BM_Scaling_synthetic)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oN);

BENCHMARK_MAIN();
