//===- bench/vm_throughput.cpp - Bytecode VM vs AST interpreter -----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-throughput comparison between the bytecode VM and the AST
/// interpreter — the engines behind every oracle validation and fuzz
/// campaign. Three workloads run on both engines, all under the
/// oracle's step budget (MaxSteps = 30000):
///
///   fuzz   — seeded generator programs, the fuzzer's actual diet:
///            many microsecond-scale runs where per-run setup
///            dominates. This is the hot path the VM exists for, and
///            the workload the gate is measured on.
///   kernel — a hand-written compute loop (nested DO, array traffic,
///            by-reference calls) that isolates dispatch cost; context
///            only (long tight loops amortize per-run cost, so the
///            engines differ by dispatch speed alone here).
///   suite  — the 12 paper-reproduction suite programs; context only.
///
/// Every measured run is also checked: both engines must produce the
/// identical observable record (status, PRINT trace, steps, reads,
/// final globals) — a benchmark of a wrong VM is worthless. Because
/// the engines execute the exact same runs, a workload's speedup is
/// the same whether read as runs/s, steps/s, or wall time.
///
/// Gate: VM throughput on the fuzz workload >= 10x the interpreter's
/// (override with --min-speedup=N). Reports per-workload numbers and
/// writes machine-readable JSON (--json=PATH, default BENCH_vm.json).
/// --smoke shrinks repetitions for the check-bench CI guard.
///
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "exec/Vm.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/RandomProgram.h"
#include "workloads/Suite.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace ipcp;

namespace {

using Clock = std::chrono::steady_clock;

// The dispatch-cost kernel: ~31k steps per run, dominated by the inner
// DO body (array read/write, wrapping arithmetic, a by-reference
// accumulator threaded through every call).
const char *kKernelSource = R"(proc main()
  integer i, acc
  do i = 1, 200
    call work(i, acc)
  end do
  print acc
end
proc work(n, acc)
  integer j, t
  array a(8)
  do j = 1, 50
    t = (n * j + acc) % 97
    a(j % 8 + 1) = t
    acc = acc + a(j % 8 + 1) + (t * 3 - n) / 5
  end do
end
)";

struct BenchProgram {
  std::string Name;
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
};

struct EngineStats {
  uint64_t Steps = 0;
  uint64_t Runs = 0;
  double WallMs = 0;

  double stepsPerSec() const {
    return WallMs > 0 ? double(Steps) * 1000.0 / WallMs : 0;
  }
  double runsPerSec() const {
    return WallMs > 0 ? double(Runs) * 1000.0 / WallMs : 0;
  }
};

struct WorkloadRow {
  std::string Name;
  EngineStats Vm, Ast;

  double speedup() const {
    return Ast.stepsPerSec() > 0 ? Vm.stepsPerSec() / Ast.stepsPerSec() : 0;
  }
};

bool Mismatched = false;

void checkIdentical(const RunResult &A, const RunResult &V,
                    const std::string &What) {
  if (A.Status != V.Status || A.Prints != V.Prints || A.Steps != V.Steps ||
      A.ReadsConsumed != V.ReadsConsumed || !(A.TrapLoc == V.TrapLoc) ||
      A.FinalGlobals != V.FinalGlobals ||
      A.FinalGlobalArrays != V.FinalGlobalArrays) {
    std::cerr << "FAIL: engines disagree on " << What << "\n  ast: "
              << A.str() << "\n  vm:  " << V.str() << '\n';
    Mismatched = true;
  }
}

std::vector<BenchProgram> loadPrograms(unsigned RandomSeeds) {
  std::vector<BenchProgram> Programs;
  auto add = [&](const std::string &Name, const std::string &Source) {
    DiagnosticEngine Diags;
    BenchProgram P;
    P.Name = Name;
    P.Ctx = parseProgram(Source, Diags);
    if (!Diags.hasErrors())
      P.Symbols = Sema::run(*P.Ctx, Diags);
    if (Diags.hasErrors()) {
      std::cerr << "FAIL: " << Name << " does not parse: " << Diags.str();
      std::exit(1);
    }
    Programs.push_back(std::move(P));
  };
  add("kernel", kKernelSource);
  for (const WorkloadProgram &W : benchmarkSuite())
    add("suite/" + W.Name, W.Source);
  for (uint64_t Seed = 1; Seed <= RandomSeeds; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed * 101;
    add("fuzz/" + std::to_string(Seed), generateRandomProgram(Spec));
  }
  return Programs;
}

/// One workload bucket ("kernel", "suite", "random") measured on one
/// engine: \p Reps repetitions of every (program, read-seed) pair.
EngineStats measure(const std::vector<BenchProgram *> &Programs,
                    ExecEngine Engine, unsigned Reps,
                    std::vector<RunResult> *FirstRunRecord) {
  EngineStats S;
  std::vector<std::unique_ptr<ProgramRunner>> Runners;
  for (const BenchProgram *P : Programs)
    Runners.push_back(std::make_unique<ProgramRunner>(P->Ctx->program(),
                                                      P->Symbols, Engine));
  const uint64_t ReadSeeds[] = {1, 2};
  Clock::time_point T0 = Clock::now();
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    for (size_t I = 0; I != Runners.size(); ++I) {
      for (uint64_t Seed : ReadSeeds) {
        RunOptions RO;
        RO.ReadSeed = Seed;
        RO.Limits.MaxSteps = 30000; // The oracle's validation budget.
        RunResult R = Runners[I]->run(RO);
        S.Steps += R.Steps;
        ++S.Runs;
        if (Rep == 0 && FirstRunRecord)
          FirstRunRecord->push_back(std::move(R));
      }
    }
  }
  S.WallMs = std::chrono::duration<double, std::milli>(Clock::now() - T0)
                 .count();
  return S;
}

WorkloadRow benchWorkload(const std::string &Name,
                          const std::vector<BenchProgram *> &Programs,
                          unsigned Reps) {
  WorkloadRow Row;
  Row.Name = Name;
  std::vector<RunResult> VmFirst, AstFirst;
  // Interpreter first, VM second; each engine's runners are built
  // outside its timed region (compilation is a once-per-program cost
  // the oracle also pays once, not per seed).
  Row.Ast = measure(Programs, ExecEngine::Ast, Reps, &AstFirst);
  Row.Vm = measure(Programs, ExecEngine::Vm, Reps, &VmFirst);
  for (size_t I = 0; I != VmFirst.size() && I != AstFirst.size(); ++I)
    checkIdentical(AstFirst[I], VmFirst[I],
                   Name + " run #" + std::to_string(I));
  return Row;
}

void printRow(const WorkloadRow &R) {
  std::printf("  %-8s %10.2f M steps/s (vm)  %8.2f M steps/s (ast)  "
              "%8.1f K runs/s (vm)  %8.1f K runs/s (ast)  %6.1fx\n",
              R.Name.c_str(), R.Vm.stepsPerSec() / 1e6,
              R.Ast.stepsPerSec() / 1e6, R.Vm.runsPerSec() / 1e3,
              R.Ast.runsPerSec() / 1e3, R.speedup());
}

void emitRow(std::ofstream &Out, const WorkloadRow &R, bool Last) {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "    {\"name\": \"%s\", \"vm_steps_per_sec\": %.0f, "
                "\"ast_steps_per_sec\": %.0f, \"vm_runs_per_sec\": %.0f, "
                "\"ast_runs_per_sec\": %.0f, \"speedup\": %.3f, "
                "\"steps\": %llu, \"runs\": %llu}%s\n",
                R.Name.c_str(), R.Vm.stepsPerSec(), R.Ast.stepsPerSec(),
                R.Vm.runsPerSec(), R.Ast.runsPerSec(), R.speedup(),
                static_cast<unsigned long long>(R.Vm.Steps),
                static_cast<unsigned long long>(R.Vm.Runs),
                Last ? "" : ",");
  Out << Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath = "BENCH_vm.json";
  double MinSpeedup = 10.0;
  unsigned Reps = 40;
  unsigned RandomSeeds = 20;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg.rfind("--min-speedup=", 0) == 0)
      MinSpeedup = std::strtod(Arg.c_str() + 14, nullptr);
    else if (Arg.rfind("--reps=", 0) == 0)
      Reps = static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr,
                                                10));
    else {
      std::cerr << "usage: vm_throughput [--smoke] [--json=PATH] "
                   "[--min-speedup=N] [--reps=N]\n";
      return 1;
    }
  }
  if (Smoke) {
    Reps = 4;
    RandomSeeds = 6;
  }

  std::vector<BenchProgram> All = loadPrograms(RandomSeeds);
  std::vector<BenchProgram *> Kernel, Suite, Fuzz;
  for (BenchProgram &P : All) {
    if (P.Name == "kernel")
      Kernel.push_back(&P);
    else if (P.Name.rfind("suite/", 0) == 0)
      Suite.push_back(&P);
    else
      Fuzz.push_back(&P);
  }

  std::cout << "VM vs AST interpreter throughput (" << Reps
            << " reps x 2 read seeds, max_steps 30000, dispatch: "
            << vmDispatchMode() << (Smoke ? ", smoke" : "") << ")\n\n";

  // The fuzz row is the gated hot path: short runs where per-run
  // setup dominates, repeated enough times for a stable wall clock.
  std::vector<WorkloadRow> Rows;
  Rows.push_back(benchWorkload("fuzz", Fuzz, Reps * 25));
  Rows.push_back(benchWorkload("kernel", Kernel, Reps * 4));
  Rows.push_back(benchWorkload("suite", Suite, Reps));
  for (const WorkloadRow &R : Rows)
    printRow(R);
  const WorkloadRow &Gated = Rows.front();

  double Speedup = Gated.speedup();
  std::printf("\nfuzz workload (gated): %.1f K runs/s (vm) vs "
              "%.1f K runs/s (ast) = %.1fx (gate: >= %.1fx)\n",
              Gated.Vm.runsPerSec() / 1e3, Gated.Ast.runsPerSec() / 1e3,
              Speedup, MinSpeedup);

  std::ofstream Out(JsonPath);
  if (Out) {
    char Buf[256];
    Out << "{\n  \"workloads\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I)
      emitRow(Out, Rows[I], I + 1 == Rows.size());
    std::snprintf(Buf, sizeof(Buf),
                  "  ],\n  \"gated_workload\": \"fuzz\",\n"
                  "  \"vm_runs_per_sec\": %.0f,\n"
                  "  \"ast_runs_per_sec\": %.0f,\n"
                  "  \"speedup\": %.3f,\n  \"gate\": %.1f,\n",
                  Gated.Vm.runsPerSec(), Gated.Ast.runsPerSec(), Speedup,
                  MinSpeedup);
    Out << Buf << "  \"dispatch\": \"" << vmDispatchMode()
        << "\",\n  \"max_steps\": 30000,\n  \"reps\": " << Reps
        << ",\n  \"smoke\": " << (Smoke ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << JsonPath << '\n';
  }

  bool Ok = true;
  if (Mismatched) {
    std::cerr << "FAIL: VM and interpreter disagreed on a measured run\n";
    Ok = false;
  }
  if (Speedup < MinSpeedup) {
    std::cerr << "FAIL: fuzz-workload speedup " << Speedup
              << "x is below the gate (" << MinSpeedup << "x)\n";
    Ok = false;
  }
  return Ok ? 0 : 1;
}
