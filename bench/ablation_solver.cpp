//===- bench/ablation_solver.cpp - Solver strategy ablation ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper used "a simple worklist iterative scheme" and notes that
/// Callahan et al. give an asymptotically optimal algorithm while "the
/// implementation used in our experiment was less efficient", and that
/// "even with this less efficient solver, the problems converged
/// quickly". This ablation compares the worklist scheme against a naive
/// round-robin sweep, in time and in jump-function evaluations, and
/// checks both produce identical CONSTANTS sets.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "ipcp/Pipeline.h"
#include "ir/CfgBuilder.h"
#include "lang/Parser.h"
#include "workloads/Suite.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <iostream>

using namespace ipcp;

namespace {

struct Prepared {
  std::unique_ptr<AstContext> Ctx;
  SymbolTable Symbols;
  Module M;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModRefInfo> MRI;
  ProgramJumpFunctions Jfs;
};

Prepared prepare(const std::string &Source) {
  Prepared P;
  DiagnosticEngine Diags;
  P.Ctx = parseProgram(Source, Diags);
  P.Symbols = Sema::run(*P.Ctx, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    exit(1);
  }
  P.M = buildModule(P.Ctx->program(), P.Symbols);
  P.CG = std::make_unique<CallGraph>(P.M, *P.Ctx->program().entryProc());
  P.MRI = std::make_unique<ModRefInfo>(P.M, P.Symbols, *P.CG);
  JumpFunctionOptions Opts;
  P.Jfs = buildJumpFunctions(P.M, P.Symbols, *P.CG, P.MRI.get(), Opts);
  return P;
}

void BM_Solver_synthetic(benchmark::State &State) {
  SyntheticSpec Spec;
  Spec.Procs = static_cast<int>(State.range(0));
  Prepared P = prepare(generateSynthetic(Spec));
  SolverStrategy Strategy =
      State.range(1) == 0   ? SolverStrategy::Worklist
      : State.range(1) == 1 ? SolverStrategy::RoundRobin
                            : SolverStrategy::BindingGraph;
  unsigned Visits = 0, Evals = 0;
  size_t Constants = 0;
  for (auto _ : State) {
    SolveResult R = solveConstants(P.Symbols, *P.CG, P.Jfs, Strategy);
    Visits = R.ProcVisits;
    Evals = R.JfEvaluations;
    Constants = R.numConstantCells();
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Strategy == SolverStrategy::Worklist    ? "worklist"
                 : Strategy == SolverStrategy::RoundRobin ? "round-robin"
                                                          : "binding-graph");
  State.counters["proc_visits"] = double(Visits);
  State.counters["jf_evaluations"] = double(Evals);
  State.counters["constant_cells"] = double(Constants);
}

/// Both strategies must agree on every suite program (checked once at
/// startup, outside the timed region).
bool strategiesAgree() {
  for (const WorkloadProgram &W : benchmarkSuite()) {
    Prepared P = prepare(W.Source);
    SolveResult A =
        solveConstants(P.Symbols, *P.CG, P.Jfs, SolverStrategy::Worklist);
    SolveResult B = solveConstants(P.Symbols, *P.CG, P.Jfs,
                                   SolverStrategy::RoundRobin);
    SolveResult C = solveConstants(P.Symbols, *P.CG, P.Jfs,
                                   SolverStrategy::BindingGraph);
    for (ProcId Proc = 0; Proc != P.CG->numProcs(); ++Proc)
      if (A.constants(Proc) != B.constants(Proc) ||
          A.constants(Proc) != C.constants(Proc)) {
        std::cerr << "strategies disagree on " << W.Name << " proc "
                  << Proc << "\n";
        return false;
      }
  }
  return true;
}

} // namespace

BENCHMARK(BM_Solver_synthetic)
    ->ArgsProduct({{32, 128, 512}, {0, 1, 2}});

int main(int argc, char **argv) {
  if (!strategiesAgree())
    return 1;
  std::cout << "worklist, round-robin, and binding-graph agree on all "
               "suite programs\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
