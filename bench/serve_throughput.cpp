//===- bench/serve_throughput.cpp - Analysis server load generator --------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-loop load generator for the analysis server: N client threads
/// each issue a stream of analyze-source requests against an in-process
/// Server (the server core is what's being measured; the TCP pump adds
/// a syscall per line and nothing else). Two workloads run back to
/// back:
///
///   0%-repeat  — every request is a never-seen source (a unique
///                trailing comment changes the content hash without
///                changing the analysis), so every request pays the
///                full frontend + pipeline;
///   90%-repeat — 90% of requests are the same hot (source, config)
///                and are served from the session cache's reply map.
///
/// Gates (both modes):
///   - the hot request's output is byte-identical to what a one-shot
///     local pipeline renders (the ipcp-driver output contract);
///   - the 90%-repeat workload achieves >= 2x the 0%-repeat
///     throughput — the cache earning its keep under load.
///
/// Reports throughput (req/s), p50/p95 latency, and cache hit rates;
/// writes machine-readable JSON (--json=PATH, default BENCH_serve.json).
/// --smoke shrinks the request count for the check-bench CI guard.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "serve/Json.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "serve/Server.h"
#include "workloads/Suite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

using Clock = std::chrono::steady_clock;

struct WorkloadResult {
  double WallMs = 0;
  double ThroughputRps = 0;
  double P50Ms = 0;
  double P95Ms = 0;
  uint64_t Requests = 0;
  uint64_t ReplyHits = 0;
  uint64_t Misses = 0;
  bool AllOk = true;
  bool OutputsMatch = true;
};

std::string analyzeLine(const std::string &Id, const std::string &Source) {
  return "{\"id\":\"" + Id +
         "\",\"method\":\"analyze-source\",\"params\":{\"source\":" +
         JsonValue(Source).dump() + "}}";
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * double(Sorted.size() - 1));
  return Sorted[Idx];
}

/// Runs one closed-loop workload: \p Clients threads, \p PerClient
/// requests each, \p RepeatPercent of which are the shared hot request.
WorkloadResult runWorkload(unsigned Clients, unsigned PerClient,
                           unsigned RepeatPercent, unsigned Workers,
                           const std::string &BaseSource,
                           const std::string &ExpectedOutput) {
  Server S({Workers, /*QueueLimit=*/4096, /*CacheCapacity=*/16});

  WorkloadResult R;
  std::vector<std::vector<double>> Latencies(Clients);
  std::vector<std::thread> Threads;
  std::vector<char> ClientOk(Clients, 1);
  std::vector<char> ClientMatch(Clients, 1);

  Clock::time_point Start = Clock::now();
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      // Deterministic per-client request mix.
      std::mt19937 Rng(0x5eed + C);
      std::uniform_int_distribution<unsigned> Dist(0, 99);
      for (unsigned I = 0; I != PerClient; ++I) {
        bool Hot = Dist(Rng) < RepeatPercent;
        std::string Source = BaseSource;
        if (!Hot)
          Source += "! variant " + std::to_string(C) + "." +
                    std::to_string(I) + "\n";
        std::string Line =
            analyzeLine(std::to_string(C) + "." + std::to_string(I), Source);

        Clock::time_point T0 = Clock::now();
        std::string Reply = S.handle(Line);
        Latencies[C].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - T0)
                .count());

        std::string Err;
        std::optional<JsonValue> V = parseJson(Reply, Err);
        if (!V || !V->boolOr("ok", false)) {
          ClientOk[C] = 0;
          continue;
        }
        const JsonValue *Result = V->find("result");
        if (!Result || Result->strOr("output", "") != ExpectedOutput)
          ClientMatch[C] = 0;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  R.WallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();

  std::vector<double> All;
  for (const auto &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  R.Requests = All.size();
  R.ThroughputRps = R.WallMs > 0 ? 1000.0 * double(R.Requests) / R.WallMs : 0;
  R.P50Ms = percentile(All, 0.50);
  R.P95Ms = percentile(All, 0.95);
  for (unsigned C = 0; C != Clients; ++C) {
    R.AllOk = R.AllOk && ClientOk[C];
    R.OutputsMatch = R.OutputsMatch && ClientMatch[C];
  }

  JsonValue Stats = S.statsJson();
  if (const JsonValue *Cache = Stats.find("cache")) {
    R.ReplyHits = static_cast<uint64_t>(Cache->intOr("reply_hits", 0));
    R.Misses = static_cast<uint64_t>(Cache->intOr("misses", 0));
  }
  S.shutdown();
  return R;
}

void printWorkload(const char *Name, const WorkloadResult &R) {
  std::printf("%-12s %7.1f req/s  p50 %7.3f ms  p95 %7.3f ms  "
              "(%llu requests, %llu reply hits, %llu misses)\n",
              Name, R.ThroughputRps, R.P50Ms, R.P95Ms,
              (unsigned long long)R.Requests,
              (unsigned long long)R.ReplyHits,
              (unsigned long long)R.Misses);
}

void emitWorkload(std::ofstream &Out, const char *Key,
                  const WorkloadResult &R) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"%s\": {\"throughput_rps\": %.2f, \"p50_ms\": %.4f, "
                "\"p95_ms\": %.4f, \"wall_ms\": %.2f, \"requests\": %llu, "
                "\"reply_hits\": %llu, \"misses\": %llu}",
                Key, R.ThroughputRps, R.P50Ms, R.P95Ms, R.WallMs,
                (unsigned long long)R.Requests,
                (unsigned long long)R.ReplyHits,
                (unsigned long long)R.Misses);
  Out << Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath = "BENCH_serve.json";
  unsigned Clients = 4;
  unsigned PerClient = 200;
  unsigned Workers = 4;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg.rfind("--clients=", 0) == 0)
      Clients = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 10, nullptr, 10));
    else if (Arg.rfind("--requests=", 0) == 0)
      PerClient = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 11, nullptr, 10));
    else if (Arg.rfind("--workers=", 0) == 0)
      Workers = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 10, nullptr, 10));
    else {
      std::cerr << "usage: serve_throughput [--smoke] [--json=PATH] "
                   "[--clients=N] [--requests=N] [--workers=N]\n";
      return 1;
    }
  }
  if (Smoke) {
    Clients = 2;
    PerClient = 40;
    Workers = 2;
  }
  if (Clients == 0 || PerClient == 0)
    return 1;

  // The hot request analyzes a mid-sized suite program; its expected
  // output is what one-shot local analysis renders (the ipcp-driver
  // contract both modes are gated against).
  std::string BaseSource;
  for (const WorkloadProgram &W : benchmarkSuite())
    if (W.Name == "ocean")
      BaseSource = W.Source;
  if (BaseSource.empty()) {
    std::cerr << "FAIL: suite program 'ocean' missing\n";
    return 1;
  }
  PipelineOptions Opts;
  PipelineResult Local = runPipeline(BaseSource, Opts);
  if (!Local.Ok) {
    std::cerr << "FAIL: local pipeline failed: " << Local.Error << '\n';
    return 1;
  }
  std::string ExpectedHot = renderAnalysisReport(Opts, Local, ReportOptions());

  std::cout << "Analysis server throughput: " << Clients << " clients x "
            << PerClient << " requests, " << Workers << " workers"
            << (Smoke ? " (smoke)" : "") << "\n\n";

  // Cold variants append unique comments, so their reports differ from
  // the hot one only via... nothing — comments don't change analysis.
  // Every reply, hot or cold, must render the same bytes.
  WorkloadResult Cold =
      runWorkload(Clients, PerClient, 0, Workers, BaseSource, ExpectedHot);
  WorkloadResult Hot =
      runWorkload(Clients, PerClient, 90, Workers, BaseSource, ExpectedHot);

  printWorkload("0%-repeat", Cold);
  printWorkload("90%-repeat", Hot);
  double Speedup =
      Cold.ThroughputRps > 0 ? Hot.ThroughputRps / Cold.ThroughputRps : 0;
  std::printf("speedup: %.2fx (90%%-repeat over 0%%-repeat)\n", Speedup);

  std::ofstream Out(JsonPath);
  if (Out) {
    Out << "{\n";
    emitWorkload(Out, "repeat0", Cold);
    Out << ",\n";
    emitWorkload(Out, "repeat90", Hot);
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), ",\n  \"speedup\": %.3f,\n", Speedup);
    Out << Buf << "  \"clients\": " << Clients
        << ",\n  \"requests_per_client\": " << PerClient
        << ",\n  \"workers\": " << Workers << ",\n  \"smoke\": "
        << (Smoke ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << JsonPath << '\n';
  }

  bool Ok = true;
  if (!Cold.AllOk || !Hot.AllOk) {
    std::cerr << "FAIL: some requests were not answered ok\n";
    Ok = false;
  }
  if (!Cold.OutputsMatch || !Hot.OutputsMatch) {
    std::cerr << "FAIL: a reply's output diverged from the local "
                 "ipcp-driver rendering\n";
    Ok = false;
  }
  if (Hot.ReplyHits == 0) {
    std::cerr << "FAIL: the 90%-repeat workload never hit the reply cache\n";
    Ok = false;
  }
  if (Speedup < 2.0) {
    std::cerr << "FAIL: 90%-repeat throughput is only " << Speedup
              << "x the 0%-repeat workload (gate: >= 2x)\n";
    Ok = false;
  }
  return Ok ? 0 : 1;
}
