//===- bench/parallel_speedup.cpp - Serial vs parallel wall clock ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reports the wall-clock speedup of the parallel execution layer at two
/// granularities:
///
///   1. A single pipeline run on a large synthetic program, Threads=1 vs
///      Threads=4, with the per-phase breakdown from PipelineResult's
///      PhaseTimings (the fixpoint solve stays serial by design, so its
///      column should be flat while jump functions / substitution drop).
///   2. The batched suite runner over (12 programs x 9 configs), jobs
///      1 vs 2 vs 4 vs 8.
///
/// Speedup numbers are reported, not asserted — they depend on the host.
/// Determinism IS asserted: the exit code is nonzero if any parallel run
/// disagrees with its serial twin.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"
#include "workloads/Synthetic.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace ipcp;

namespace {

std::string ms(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

std::string ratio(double Serial, double Parallel) {
  if (Parallel <= 0.0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", Serial / Parallel);
  return Buf;
}

bool sameResult(const PipelineResult &A, const PipelineResult &B) {
  return A.Ok == B.Ok && A.SubstitutedConstants == B.SubstitutedConstants &&
         A.ConstantPrints == B.ConstantPrints &&
         A.PerProcSubstituted == B.PerProcSubstituted &&
         A.Constants == B.Constants && A.NeverCalled == B.NeverCalled &&
         A.SolverProcVisits == B.SolverProcVisits &&
         A.SolverJfEvaluations == B.SolverJfEvaluations &&
         A.SolverCellLowerings == B.SolverCellLowerings;
}

} // namespace

int main() {
  bool Deterministic = true;
  std::cout << "Parallel execution layer: serial vs parallel wall clock\n";
  std::cout << "(hardware threads reported: " << ThreadPool::hardwareThreads()
            << ")\n\n";

  // ---- Single-pipeline phase breakdown on a large synthetic program ----
  SyntheticSpec Spec;
  Spec.Procs = 160;
  Spec.CallsPerProc = 4;
  Spec.FillerLines = 30;
  std::string Source = generateSynthetic(Spec);

  PipelineOptions Serial;
  Serial.Threads = 1;
  PipelineResult RS = runPipeline(Source, Serial);

  PipelineOptions Par = Serial;
  Par.Threads = 4;
  PipelineResult RP = runPipeline(Source, Par);

  if (!RS.Ok || !RP.Ok) {
    std::cerr << "pipeline failed: " << (RS.Ok ? RP.Error : RS.Error);
    return 1;
  }
  if (!sameResult(RS, RP)) {
    std::cerr << "FAIL: parallel pipeline diverged from serial\n";
    Deterministic = false;
  }

  std::cout << "Pipeline phases on synthetic(" << Spec.Procs
            << " procs), Threads=1 vs Threads=4:\n";
  TablePrinter Phases;
  Phases.addHeader({"Phase", "Serial ms", "4 threads ms", "Speedup"});
  const PhaseTimings &TS = RS.Timings;
  const PhaseTimings &TP = RP.Timings;
  Phases.addRow({"frontend", ms(TS.FrontendMs), ms(TP.FrontendMs),
                 ratio(TS.FrontendMs, TP.FrontendMs)});
  Phases.addRow({"lower+modref", ms(TS.LowerMs), ms(TP.LowerMs),
                 ratio(TS.LowerMs, TP.LowerMs)});
  Phases.addRow({"jump functions", ms(TS.JumpFunctionsMs),
                 ms(TP.JumpFunctionsMs),
                 ratio(TS.JumpFunctionsMs, TP.JumpFunctionsMs)});
  Phases.addRow({"solve (serial by design)", ms(TS.SolveMs), ms(TP.SolveMs),
                 ratio(TS.SolveMs, TP.SolveMs)});
  Phases.addRow({"substitution", ms(TS.SubstituteMs), ms(TP.SubstituteMs),
                 ratio(TS.SubstituteMs, TP.SubstituteMs)});
  Phases.addRow({"total", ms(TS.TotalMs), ms(TP.TotalMs),
                 ratio(TS.TotalMs, TP.TotalMs)});
  std::cout << Phases.str() << '\n';

  // ---- Batched suite runner across job counts ----
  auto Configs = allConfigs();
  std::cout << "Suite runner, " << benchmarkSuite().size() << " programs x "
            << Configs.size() << " configs:\n";
  TablePrinter Batch;
  Batch.addHeader({"Jobs", "Wall ms", "Cell-sum ms", "Speedup vs jobs=1"});

  SuiteRunResult Base = runSuite(benchmarkSuite(), Configs, 1);
  Batch.addRow({"1", ms(Base.WallMs), ms(Base.CellMs), "1.00x"});
  for (unsigned Jobs : {2u, 4u, 8u}) {
    SuiteRunResult R = runSuite(benchmarkSuite(), Configs, Jobs);
    for (size_t I = 0; I != R.Cells.size(); ++I) {
      const SuiteCell &A = Base.Cells[I], &B = R.Cells[I];
      if (A.Ok != B.Ok || A.SubstitutedConstants != B.SubstitutedConstants ||
          A.ConstantPrints != B.ConstantPrints) {
        std::cerr << "FAIL: jobs=" << Jobs << " diverged on " << B.Program
                  << '/' << B.Config << '\n';
        Deterministic = false;
      }
    }
    Batch.addRow({std::to_string(Jobs), ms(R.WallMs), ms(R.CellMs),
                  ratio(Base.WallMs, R.WallMs)});
  }
  std::cout << Batch.str() << '\n';

  if (!Deterministic) {
    std::cout << "DETERMINISM: FAIL\n";
    return 1;
  }
  std::cout << "DETERMINISM: OK (all parallel runs identical to serial)\n";
  return 0;
}
