//===- bench/table3_mod_dce.cpp - Reproduce Table 3 -----------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 3: the most precise jump function (polynomial + return JFs)
/// without MOD information, with MOD, with complete propagation
/// (iterated dead-code elimination), and a purely intraprocedural
/// propagation. Verifies the paper's findings: MOD matters a lot, DCE
/// adds little (and only one DCE round is ever needed), intraprocedural
/// propagation finds far fewer constants.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace ipcp;

namespace {
struct RunOutcome {
  unsigned Count = 0;
  unsigned DceRounds = 0;
};
} // namespace

static RunOutcome run(const std::string &Source, bool UseMod, bool Complete,
                      bool IntraOnly) {
  PipelineOptions Opts;
  Opts.Kind = JumpFunctionKind::Polynomial;
  Opts.UseMod = UseMod;
  Opts.CompletePropagation = Complete;
  Opts.IntraproceduralOnly = IntraOnly;
  PipelineResult R = runPipeline(Source, Opts);
  if (!R.Ok) {
    std::cerr << "pipeline failed: " << R.Error;
    exit(1);
  }
  return {R.SubstitutedConstants, R.DceRounds};
}

static std::string cell(unsigned Measured, int Paper) {
  return std::to_string(Measured) + "/" + std::to_string(Paper);
}

int main() {
  std::cout << "Table 3: comparison of the most precise jump function "
               "with other propagation techniques\n";
  std::cout << "(each cell is measured/paper)\n\n";

  TablePrinter Table;
  Table.addHeader({"Program", "Poly w/o MOD", "Poly w/ MOD",
                   "Complete", "Intraprocedural", "DCE rounds"});

  bool FindingsHold = true;
  for (const WorkloadProgram &P : benchmarkSuite()) {
    RunOutcome NoMod = run(P.Source, false, false, false);
    RunOutcome WithMod = run(P.Source, true, false, false);
    RunOutcome Complete = run(P.Source, true, true, false);
    RunOutcome Intra = run(P.Source, true, false, true);

    Table.addRow({P.Name, cell(NoMod.Count, P.Paper.PolyNoMod),
                  cell(WithMod.Count, P.Paper.Polynomial),
                  cell(Complete.Count, P.Paper.Complete),
                  cell(Intra.Count, P.Paper.IntraOnly),
                  std::to_string(Complete.DceRounds)});

    // Paper findings, program by program: MOD never hurts; complete
    // propagation never hurts and needs at most one DCE round; the
    // interprocedural propagation finds at least as much as the
    // intraprocedural one.
    bool Ok = NoMod.Count <= WithMod.Count &&
              WithMod.Count <= Complete.Count &&
              Complete.DceRounds <= 1 && Intra.Count <= WithMod.Count;
    if (!Ok) {
      std::cerr << "finding violated for " << P.Name << "\n";
      FindingsHold = false;
    }
  }
  Table.print(std::cout);

  std::cout << "\nfindings:\n"
            << "  MOD information never hurts and usually helps "
               "substantially (paper: 'substantial difference')\n"
            << "  complete propagation needed at most one DCE round "
               "(paper: 'only one pass ... was needed')\n"
            << "  interprocedural >= intraprocedural on every program\n"
            << "  all verified: " << (FindingsHold ? "yes" : "NO") << "\n";
  return FindingsHold ? 0 : 1;
}
