//===- bench/fuzz_throughput.cpp - Fuzzer stage costs ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What does one fuzzing iteration cost, and where does it go? The
/// campaign budget in check-fuzz (and any longer local run) is bounded
/// by three stages; this bench times each in isolation and end to end:
///   * mutateProgram — parse, AST edit, print, re-validate;
///   * evaluateProgram — six analyzer configs plus cross-config checks,
///     with and without the transform checks and the oracle's cost
///     visible separately via the feature map left behind;
///   * runFuzzer — whole bounded campaigns, the number check-fuzz cares
///     about (iterations/second at steady state).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Mutator.h"
#include "support/FuzzFeedback.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace ipcp;

namespace {

std::string seedProgram(uint64_t Seed) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.Procs = 5;
  Spec.Globals = 3;
  return generateRandomProgram(Spec);
}

void BM_MutateProgram(benchmark::State &State) {
  std::string Source = seedProgram(3);
  uint64_t Seed = 1;
  for (auto _ : State) {
    MutationOptions Opts;
    Opts.Seed = Seed++;
    benchmark::DoNotOptimize(mutateProgram(Source, Opts));
  }
}
BENCHMARK(BM_MutateProgram);

void BM_EvaluateProgram(benchmark::State &State) {
  std::string Source = seedProgram(3);
  FuzzOptions Opts;
  Opts.CheckTransforms = State.range(0) != 0;
  for (auto _ : State) {
    FuzzFeedback FB;
    benchmark::DoNotOptimize(evaluateProgram(Source, FB, Opts));
  }
}
BENCHMARK(BM_EvaluateProgram)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"transforms"});

void BM_Campaign(benchmark::State &State) {
  for (auto _ : State) {
    FuzzOptions Opts;
    Opts.Seed = 11;
    Opts.Runs = unsigned(State.range(0));
    Opts.SeedPrograms = 3;
    Opts.CheckTransforms = false;
    FuzzResult R = runFuzzer(Opts);
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_Campaign)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
