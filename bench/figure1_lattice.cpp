//===- bench/figure1_lattice.cpp - Reproduce Figure 1 ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1 of the paper defines the constant propagation lattice and its
/// meet rules. This binary prints the meet table over representative
/// elements and checks the paper's stated properties (bounded depth:
/// every value can be lowered at most twice).
///
//===----------------------------------------------------------------------===//

#include "ipcp/Lattice.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <vector>

using namespace ipcp;

int main() {
  std::cout << "Figure 1: the constant propagation lattice\n";
  std::cout << "  T  = no information yet (procedure never invoked)\n";
  std::cout << "  c  = a known integer constant\n";
  std::cout << "  _|_ = not provably constant\n\n";

  std::vector<LatticeValue> Elems = {
      LatticeValue::top(), LatticeValue::constant(3),
      LatticeValue::constant(7), LatticeValue::bottom()};

  TablePrinter Table;
  Table.addHeader({"^", "T", "3", "7", "_|_"});
  for (const LatticeValue &A : Elems) {
    std::vector<std::string> Row = {A.str()};
    for (const LatticeValue &B : Elems)
      Row.push_back(A.meet(B).str());
    Table.addRow(Row);
  }
  Table.print(std::cout);

  // The paper: "the value associated with some formal parameter x can be
  // lowered at most twice."
  LatticeValue V = LatticeValue::top();
  unsigned Lowerings = 0;
  for (const LatticeValue &Next :
       {LatticeValue::constant(1), LatticeValue::constant(2),
        LatticeValue::constant(3), LatticeValue::bottom(),
        LatticeValue::constant(4)}) {
    LatticeValue Met = V.meet(Next);
    if (Met != V)
      ++Lowerings;
    V = Met;
  }
  std::cout << "\nlattice depth check: " << Lowerings
            << " lowerings along a worst-case chain (paper bound: 2)\n";
  return Lowerings <= 2 ? 0 : 1;
}
