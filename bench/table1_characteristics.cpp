//===- bench/table1_characteristics.cpp - Reproduce Table 1 ---------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper lists the test suite's characteristics:
/// non-comment lines, number of procedures, and mean/median lines per
/// procedure. This binary prints the same columns for our generated
/// suite next to the paper's values where the OCR of the paper preserved
/// them ("n/a" otherwise).
///
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iomanip>
#include <iostream>
#include <sstream>

using namespace ipcp;

static std::string paperCell(int Value) {
  return Value < 0 ? "n/a" : std::to_string(Value);
}

static std::string fixed1(double Value) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(1) << Value;
  return OS.str();
}

int main() {
  std::cout << "Table 1: characteristics of the program test suite\n";
  std::cout << "(paper columns recovered where the OCR preserved them; "
               "our programs are generated\n stand-ins for SPEC/PERFECT, "
               "see DESIGN.md)\n\n";

  TablePrinter Table;
  Table.addHeader({"Program", "Lines", "Procs", "Mean", "Median",
                   "Paper lines", "Paper procs", "Paper mean",
                   "Paper median"});
  for (const WorkloadProgram &P : benchmarkSuite()) {
    ProgramCharacteristics C = measureCharacteristics(P.Source);
    Table.addRow({P.Name, std::to_string(C.Lines),
                  std::to_string(C.Procs), fixed1(C.MeanLinesPerProc),
                  fixed1(C.MedianLinesPerProc),
                  paperCell(P.PaperTable1.Lines),
                  paperCell(P.PaperTable1.Procs),
                  paperCell(P.PaperTable1.MeanLinesPerProc),
                  paperCell(P.PaperTable1.MedianLinesPerProc)});
  }
  Table.print(std::cout);
  return 0;
}
