//===- bench/comparison_wz.cpp - Jump functions vs procedure integration --===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Other Work section contrasts the CCKT jump-function
/// framework with Wegman & Zadeck's proposal (reference [16]): integrate
/// procedures into their call sites and let intraprocedural constant
/// propagation see everything. "Because this technique does not make
/// paths through the call graph explicit, it potentially detects fewer
/// constants than the method proposed by Wegman and Zadeck" — but "data
/// is not yet available" on the integration approach's practicality.
///
/// This bench supplies that data for our suite: constants found by the
/// polynomial jump-function analyzer vs full procedure integration plus
/// intraprocedural propagation, alongside the code growth integration
/// pays. Counts are not directly comparable one-to-one (inlining
/// duplicates use sites — each clone's uses count separately), so the
/// table also reports the size ratio that contextualizes them.
///
//===----------------------------------------------------------------------===//

#include "ipcp/Inliner.h"
#include "ipcp/Pipeline.h"
#include "lang/Parser.h"
#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iomanip>
#include <iostream>
#include <sstream>

using namespace ipcp;

namespace {
struct Counts {
  unsigned Substituted = 0;
  unsigned ConstPrints = 0;
};
} // namespace

static Counts count(const std::string &Source,
                    const PipelineOptions &Opts) {
  PipelineResult R = runPipeline(Source, Opts);
  if (!R.Ok) {
    std::cerr << "pipeline failed: " << R.Error;
    exit(1);
  }
  return {R.SubstitutedConstants, R.ConstantPrints};
}

int main() {
  std::cout << "Comparison: CCKT jump functions vs Wegman-Zadeck "
               "procedure integration\n\n";

  TablePrinter Table;
  Table.addHeader({"Program", "JF subst", "WZ subst", "JF prints",
                   "WZ prints", "Growth", "Inlined", "Kept"});

  bool IntegrationAtLeastMatches = true;
  for (const WorkloadProgram &P : benchmarkSuite()) {
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(P.Source, Diags);
    SymbolTable Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      std::cerr << Diags.str();
      return 1;
    }
    InlineResult Inlined = inlineProgram(*Ctx, Symbols);

    Counts Jf = count(P.Source, PipelineOptions());
    PipelineOptions Intra;
    Intra.IntraproceduralOnly = true;
    Counts Wz = count(Inlined.Source, Intra);

    ProgramCharacteristics Before = measureCharacteristics(P.Source);
    ProgramCharacteristics After =
        measureCharacteristics(Inlined.Source);
    std::ostringstream Growth;
    Growth << std::fixed << std::setprecision(1)
           << double(After.Lines) / double(Before.Lines) << "x";

    unsigned Kept = Inlined.SkippedRecursive + Inlined.SkippedHasReturn +
                    Inlined.SkippedBudget;
    (void)Before;
    (void)After;
    Table.addRow({P.Name, std::to_string(Jf.Substituted),
                  std::to_string(Wz.Substituted),
                  std::to_string(Jf.ConstPrints),
                  std::to_string(Wz.ConstPrints), Growth.str(),
                  std::to_string(Inlined.InlinedCalls),
                  std::to_string(Kept)});

    // Substituted-use counts are not one-to-one across integration
    // (call-argument use sites disappear with the calls; clone copies
    // add sites). Constant *print* sites are stable: with every call
    // integrated, intraprocedural propagation must prove at least the
    // prints the jump functions prove.
    if (Kept == 0 && Wz.ConstPrints < Jf.ConstPrints)
      IntegrationAtLeastMatches = false;
  }
  Table.print(std::cout);

  std::cout << "\nfindings:\n"
            << "  full integration never proves fewer constant prints "
               "than the jump\n   functions (Other Work: W-Z "
               "'potentially detects [more] constants'): "
            << (IntegrationAtLeastMatches ? "yes" : "NO") << "\n"
            << "  the price is the code growth column — the jump-function "
               "framework gets\n   its results at 1.0x\n";
  return IntegrationAtLeastMatches ? 0 : 1;
}
