//===- bench/incremental_speedup.cpp - Cold vs warm suite batches ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the incremental analysis sessions buy on the paper's
/// own workload: the full (12 programs x 9 configs) suite batch, run
///
///   cold — SuiteSharing::PerCell: every cell re-parses its program and
///          rebuilds every analysis artifact from source, the pre-session
///          behavior;
///   warm — SuiteSharing::Shared: one frontend and one AnalysisSession
///          per program, cells sharing lowered IR, SSA, value numberings,
///          and jump-function bases.
///
/// Correctness is asserted, not reported: every cell's Ok /
/// SubstitutedConstants / ConstantPrints must be identical between the
/// two modes (the cold-vs-warm fingerprint tests check the full result;
/// this guards the bench's own numbers). Timing gates:
///
///   default    warm wall must be >= 2x faster than cold (best of
///              --iters runs each);
///   --smoke    one iteration, warm <= cold — the cheap CI guard
///              (ctest -L check-bench).
///
/// Results are also written as machine-readable JSON (--json=PATH,
/// default BENCH_suite.json): wall and per-phase milliseconds for both
/// modes, session cache hit rates, and solver memo totals. See
/// EXPERIMENTS.md "Incremental sessions & caching" for how to read it.
///
//===----------------------------------------------------------------------===//

#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace ipcp;

namespace {

/// Per-phase milliseconds summed over a batch's cells.
struct PhaseSums {
  double LowerMs = 0, JumpFunctionsMs = 0, SolveMs = 0, SubstituteMs = 0;
  double FrontendMs = 0; ///< Per-cell (cold) or shared pass (warm).
};

PhaseSums sumPhases(const SuiteRunResult &R) {
  PhaseSums S;
  for (const SuiteCell &Cell : R.Cells) {
    S.FrontendMs += Cell.Timings.FrontendMs;
    S.LowerMs += Cell.Timings.LowerMs;
    S.JumpFunctionsMs += Cell.Timings.JumpFunctionsMs;
    S.SolveMs += Cell.Timings.SolveMs;
    S.SubstituteMs += Cell.Timings.SubstituteMs;
  }
  S.FrontendMs += R.FrontendMs; // Zero for cold batches.
  return S;
}

/// Cells the two modes must agree on; returns the number that do.
size_t identicalCells(const SuiteRunResult &Cold, const SuiteRunResult &Warm,
                      bool &AllIdentical) {
  size_t Same = 0;
  for (size_t I = 0; I != Cold.Cells.size(); ++I) {
    const SuiteCell &A = Cold.Cells[I], &B = Warm.Cells[I];
    if (A.Ok == B.Ok && A.SubstitutedConstants == B.SubstitutedConstants &&
        A.ConstantPrints == B.ConstantPrints) {
      ++Same;
      continue;
    }
    AllIdentical = false;
    std::cerr << "FAIL: warm diverged from cold on " << A.Program << '/'
              << A.Config << ": substituted " << A.SubstitutedConstants
              << " vs " << B.SubstitutedConstants << ", prints "
              << A.ConstantPrints << " vs " << B.ConstantPrints << '\n';
  }
  return Same;
}

double rate(uint64_t Reused, uint64_t Built) {
  uint64_t Total = Reused + Built;
  return Total ? double(Reused) / double(Total) : 0.0;
}

void emitPhases(std::ofstream &Out, const char *Key, double WallMs,
                double CellMs, const PhaseSums &S) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"%s\": {\"wall_ms\": %.3f, \"cell_sum_ms\": %.3f, "
                "\"frontend_ms\": %.3f, \"lower_ms\": %.3f, "
                "\"jump_functions_ms\": %.3f, \"solve_ms\": %.3f, "
                "\"substitute_ms\": %.3f}",
                Key, WallMs, CellMs, S.FrontendMs, S.LowerMs,
                S.JumpFunctionsMs, S.SolveMs, S.SubstituteMs);
  Out << Buf;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath = "BENCH_suite.json";
  unsigned Iters = 3;
  unsigned Jobs = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg.rfind("--iters=", 0) == 0)
      Iters = static_cast<unsigned>(std::strtoul(Arg.c_str() + 8, nullptr, 10));
    else if (Arg.rfind("--jobs=", 0) == 0)
      Jobs = static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr, 10));
    else {
      std::cerr << "usage: incremental_speedup [--smoke] [--json=PATH] "
                   "[--iters=N] [--jobs=N]\n";
      return 1;
    }
  }
  if (Smoke) {
    Iters = 1;
    Jobs = 1;
  }
  if (Iters == 0)
    Iters = 1;

  const std::vector<WorkloadProgram> Programs = extendedSuite();
  const std::vector<SuiteConfig> Configs = allConfigs();
  std::cout << "Incremental sessions: cold (per-cell) vs warm (shared) "
               "suite batch\n"
            << Programs.size() << " programs x " << Configs.size()
            << " configs, jobs=" << Jobs << ", iters=" << Iters
            << (Smoke ? " (smoke)" : "") << "\n\n";

  // Best-of-N keeps scheduler noise out of the gate; the first cold run
  // also serves as the warm-up for both modes.
  SuiteRunResult Cold, Warm;
  double ColdMs = 0, WarmMs = 0;
  for (unsigned I = 0; I != Iters; ++I) {
    SuiteRunResult C =
        runSuite(Programs, Configs, Jobs, 1, SuiteSharing::PerCell);
    SuiteRunResult W =
        runSuite(Programs, Configs, Jobs, 1, SuiteSharing::Shared);
    if (I == 0 || C.WallMs < ColdMs) {
      ColdMs = C.WallMs;
      Cold = std::move(C);
    }
    if (I == 0 || W.WallMs < WarmMs) {
      WarmMs = W.WallMs;
      Warm = std::move(W);
    }
  }

  bool AllIdentical = true;
  size_t Same = identicalCells(Cold, Warm, AllIdentical);
  double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0.0;
  PhaseSums ColdPhases = sumPhases(Cold);
  PhaseSums WarmPhases = sumPhases(Warm);
  const SessionStats &S = Warm.Cache;
  uint64_t MemoHits = 0, MemoMisses = 0;
  for (const SuiteCell &Cell : Warm.Cells) {
    MemoHits += Cell.SolverMemoHits;
    MemoMisses += Cell.SolverMemoMisses;
  }

  std::printf("cold: %8.2f ms wall (frontend %.2f, lower %.2f, jf %.2f, "
              "solve %.2f, substitute %.2f)\n",
              ColdMs, ColdPhases.FrontendMs, ColdPhases.LowerMs,
              ColdPhases.JumpFunctionsMs, ColdPhases.SolveMs,
              ColdPhases.SubstituteMs);
  std::printf("warm: %8.2f ms wall (frontend %.2f, lower %.2f, jf %.2f, "
              "solve %.2f, substitute %.2f)\n",
              WarmMs, WarmPhases.FrontendMs, WarmPhases.LowerMs,
              WarmPhases.JumpFunctionsMs, WarmPhases.SolveMs,
              WarmPhases.SubstituteMs);
  std::printf("speedup: %.2fx, identical cells: %zu/%zu\n", Speedup, Same,
              Cold.Cells.size());
  std::printf("caches: ssa %.0f%% reused (%llu/%llu), vn %.0f%% reused "
              "(%llu/%llu), jf bases %.0f%% reused (%llu/%llu)\n",
              100 * rate(S.SsaReused, S.SsaBuilt),
              (unsigned long long)S.SsaReused,
              (unsigned long long)(S.SsaReused + S.SsaBuilt),
              100 * rate(S.VnReused, S.VnBuilt),
              (unsigned long long)S.VnReused,
              (unsigned long long)(S.VnReused + S.VnBuilt),
              100 * rate(S.JfBasesReused, S.JfBasesBuilt),
              (unsigned long long)S.JfBasesReused,
              (unsigned long long)(S.JfBasesReused + S.JfBasesBuilt));
  double MemoHitRate = rate(MemoHits, MemoMisses);
  std::printf("solver memo: hit rate %.0f%% (%llu hits / %llu misses)\n",
              100 * MemoHitRate, (unsigned long long)MemoHits,
              (unsigned long long)MemoMisses);

  std::ofstream Json(JsonPath);
  if (!Json) {
    std::cerr << "error: cannot write '" << JsonPath << "'\n";
    return 1;
  }
  char Buf[512];
  Json << "{\n";
  Json << "  \"programs\": " << Programs.size()
       << ", \"configs\": " << Configs.size() << ", \"jobs\": " << Jobs
       << ", \"iters\": " << Iters
       << ", \"smoke\": " << (Smoke ? "true" : "false") << ",\n";
  emitPhases(Json, "cold", ColdMs, Cold.CellMs, ColdPhases);
  Json << ",\n";
  emitPhases(Json, "warm", WarmMs, Warm.CellMs, WarmPhases);
  Json << ",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"speedup\": %.3f,\n", Speedup);
  Json << Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"cache\": {\"procs_lowered\": %llu, \"procs_relowered\": %llu, "
      "\"ssa_built\": %llu, \"ssa_reused\": %llu, \"ssa_hit_rate\": %.3f, "
      "\"vn_built\": %llu, \"vn_reused\": %llu, \"vn_hit_rate\": %.3f, "
      "\"jf_bases_built\": %llu, \"jf_bases_reused\": %llu, "
      "\"jf_base_hit_rate\": %.3f},\n",
      (unsigned long long)S.ProcsLowered, (unsigned long long)S.ProcsRelowered,
      (unsigned long long)S.SsaBuilt, (unsigned long long)S.SsaReused,
      rate(S.SsaReused, S.SsaBuilt), (unsigned long long)S.VnBuilt,
      (unsigned long long)S.VnReused, rate(S.VnReused, S.VnBuilt),
      (unsigned long long)S.JfBasesBuilt, (unsigned long long)S.JfBasesReused,
      rate(S.JfBasesReused, S.JfBasesBuilt));
  Json << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  \"solver_memo\": {\"hits\": %llu, \"misses\": %llu, "
                "\"hit_rate\": %.3f},\n",
                (unsigned long long)MemoHits, (unsigned long long)MemoMisses,
                MemoHitRate);
  Json << Buf;
  Json << "  \"identical_cells\": " << Same << ", \"total_cells\": "
       << Cold.Cells.size() << "\n}\n";
  Json.flush();
  if (!Json) {
    std::cerr << "error: failed writing '" << JsonPath << "'\n";
    return 1;
  }
  std::cout << "wrote " << JsonPath << "\n";

  if (!AllIdentical) {
    std::cout << "RESULT: FAIL (warm results diverged from cold)\n";
    return 1;
  }
  // The memo can never silently go dead again: the shared batch must
  // replay a meaningful fraction of its procedure visits. The full run
  // gates the ROADMAP target; the smoke run still insists on a nonzero
  // rate (the pre-fix memo sat at exactly 0 hits for three PRs).
  if (MemoHits + MemoMisses == 0) {
    std::cout << "RESULT: FAIL (no memo-eligible procedure visits?)\n";
    return 1;
  }
  if (!Smoke && MemoHitRate < 0.3) {
    std::cout << "RESULT: FAIL (memo hit rate " << MemoHitRate
              << " below the 0.3 gate)\n";
    return 1;
  }
  if (Smoke && MemoHits == 0) {
    std::cout << "RESULT: FAIL (memo hit rate 0 on the shared batch)\n";
    return 1;
  }
  if (Smoke) {
    if (WarmMs > ColdMs) {
      std::cout << "RESULT: FAIL (warm " << WarmMs << " ms slower than cold "
                << ColdMs << " ms)\n";
      return 1;
    }
  } else if (Speedup < 2.0) {
    std::cout << "RESULT: FAIL (speedup " << Speedup << "x below the 2x "
              << "gate)\n";
    return 1;
  }
  std::cout << "RESULT: OK\n";
  return 0;
}
