//===- bench/ablation_gsa.cpp - Gated SSA vs complete propagation ---------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §4.2 claims: "the results that we obtained in this study
/// with complete propagation can be achieved by basing the jump-function
/// generator on a gated single-assignment form ... would never consider
/// the dead assignments that we found in the complete propagations."
///
/// This ablation runs the polynomial analyzer three ways — plain, with
/// iterated dead-code elimination (complete propagation), and with gated
/// jump functions — and verifies that gated SSA recovers everything
/// complete propagation recovers, in a single pass. (Gated counts can
/// exceed complete counts by the guard-condition uses that DCE physically
/// deletes but GSA merely bypasses.)
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace ipcp;

namespace {
struct RunOutcome {
  unsigned Count = 0;
  unsigned DceRounds = 0;
};
} // namespace

static RunOutcome run(const std::string &Source, bool Complete, bool Gsa) {
  PipelineOptions Opts;
  Opts.CompletePropagation = Complete;
  Opts.UseGatedSsa = Gsa;
  PipelineResult R = runPipeline(Source, Opts);
  if (!R.Ok) {
    std::cerr << "pipeline failed: " << R.Error;
    exit(1);
  }
  return {R.SubstitutedConstants, R.DceRounds};
}

int main() {
  std::cout << "Ablation: gated-SSA jump functions vs complete "
               "propagation (paper §4.2)\n\n";

  TablePrinter Table;
  Table.addHeader({"Program", "Poly", "Complete", "DCE rounds",
                   "Gated SSA", "GSA rounds"});
  bool ClaimHolds = true;
  for (const WorkloadProgram &P : benchmarkSuite()) {
    RunOutcome Plain = run(P.Source, false, false);
    RunOutcome Complete = run(P.Source, true, false);
    RunOutcome Gated = run(P.Source, false, true);
    Table.addRow({P.Name, std::to_string(Plain.Count),
                  std::to_string(Complete.Count),
                  std::to_string(Complete.DceRounds),
                  std::to_string(Gated.Count), "0"});
    // The §4.2 claim: one gated pass subsumes iterated DCE.
    if (Gated.Count < Complete.Count) {
      std::cerr << "GSA claim violated on " << P.Name << "\n";
      ClaimHolds = false;
    }
  }
  Table.print(std::cout);

  std::cout << "\nfinding: gated jump functions reach complete-"
               "propagation precision without iterating: "
            << (ClaimHolds ? "yes" : "NO") << "\n";
  return ClaimHolds ? 0 : 1;
}
