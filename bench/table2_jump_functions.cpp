//===- bench/table2_jump_functions.cpp - Reproduce Table 2 ----------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: constants found through use of jump functions. Four forward
/// jump functions with return jump functions, plus polynomial and
/// pass-through without return jump functions, over the 12-program
/// suite. Prints measured/paper pairs and verifies the paper's headline
/// findings (pass-through == polynomial; intraprocedural <= pass-through;
/// literal <= intraprocedural; return JFs tripled ocean).
///
//===----------------------------------------------------------------------===//

#include "ipcp/Pipeline.h"
#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace ipcp;

static unsigned run(const std::string &Source, JumpFunctionKind Kind,
                    bool Rjf) {
  PipelineOptions Opts;
  Opts.Kind = Kind;
  Opts.UseReturnJumpFunctions = Rjf;
  PipelineResult R = runPipeline(Source, Opts);
  if (!R.Ok) {
    std::cerr << "pipeline failed: " << R.Error;
    exit(1);
  }
  return R.SubstitutedConstants;
}

static std::string cell(unsigned Measured, int Paper) {
  return std::to_string(Measured) + "/" + std::to_string(Paper);
}

int main() {
  std::cout << "Table 2: constants found through use of jump functions\n";
  std::cout << "(each cell is measured/paper)\n\n";

  TablePrinter Table;
  Table.addHeader({"Program", "Poly", "Pass", "Intra", "Literal",
                   "Poly-noRJF", "Pass-noRJF"});

  bool AllFindingsHold = true;
  for (const WorkloadProgram &P : benchmarkSuite()) {
    unsigned Poly = run(P.Source, JumpFunctionKind::Polynomial, true);
    unsigned Pass = run(P.Source, JumpFunctionKind::PassThrough, true);
    unsigned Intra = run(P.Source, JumpFunctionKind::IntraConst, true);
    unsigned Lit = run(P.Source, JumpFunctionKind::Literal, true);
    unsigned PolyNoRjf =
        run(P.Source, JumpFunctionKind::Polynomial, false);
    unsigned PassNoRjf =
        run(P.Source, JumpFunctionKind::PassThrough, false);

    Table.addRow({P.Name, cell(Poly, P.Paper.Polynomial),
                  cell(Pass, P.Paper.PassThrough),
                  cell(Intra, P.Paper.IntraConst),
                  cell(Lit, P.Paper.Literal),
                  cell(PolyNoRjf, P.Paper.PolynomialNoRjf),
                  cell(PassNoRjf, P.Paper.PassThroughNoRjf)});

    // The paper's orderings must hold on every program.
    bool Ok = Pass == Poly && Intra <= Pass && Lit <= Intra &&
              PassNoRjf == PolyNoRjf && PolyNoRjf <= Poly;
    if (!Ok) {
      std::cerr << "ordering violated for " << P.Name << "\n";
      AllFindingsHold = false;
    }
  }
  Table.print(std::cout);

  // Headline finding: return jump functions more than tripled ocean.
  const WorkloadProgram *Ocean = nullptr;
  for (const WorkloadProgram &P : benchmarkSuite())
    if (P.Name == "ocean")
      Ocean = &P;
  unsigned OceanRjf = run(Ocean->Source, JumpFunctionKind::Polynomial,
                          true);
  unsigned OceanNoRjf = run(Ocean->Source, JumpFunctionKind::Polynomial,
                            false);
  std::cout << "\nfindings:\n";
  std::cout << "  pass-through == polynomial on every program: "
            << (AllFindingsHold ? "yes" : "NO") << "\n";
  std::cout << "  return JFs on ocean: " << OceanNoRjf << " -> " << OceanRjf
            << " (x" << (double(OceanRjf) / double(OceanNoRjf))
            << ", paper: 62 -> 194, >3x)\n";
  return AllFindingsHold && OceanRjf > 3 * OceanNoRjf ? 0 : 1;
}
