//===- bench/cloning_study.cpp - Constant-directed cloning study ----------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metzger & Stroud (paper reference [13]) report that "goal-directed
/// cloning of procedures based on interprocedural constants can
/// substantially increase the number of interprocedural constants
/// available". This study runs the cloning transform over programs whose
/// shared helpers receive conflicting constants — the meet destroys the
/// information until the helpers are duplicated — and over the main
/// suite (whose programs were generated without cloning opportunities,
/// a negative control the transform must recognize).
///
//===----------------------------------------------------------------------===//

#include "ipcp/Cloning.h"
#include "ipcp/Pipeline.h"
#include "support/TablePrinter.h"
#include "workloads/Suite.h"

#include <iostream>

using namespace ipcp;

namespace {

struct Scenario {
  const char *Name;
  std::string Source;
};

/// A BLAS-style library where one helper serves several shapes.
std::string sharedKernelScenario() {
  return R"(program sharedkernel
proc main()
  call sweep(64, 1)
  call sweep(128, 2)
  call sweep(64, 1)
end
proc sweep(n, stride)
  integer i
  do i = 1, n, stride
    call body(n, stride, i)
  end do
end
proc body(n, stride, idx)
  print n + stride * idx
  print n / stride
end
)";
}

/// Cascading constants: cloning stage1 exposes clones of stage2.
std::string cascadeScenario() {
  return R"(program cascade
proc main()
  call stage1(10)
  call stage1(20)
end
proc stage1(k)
  call stage2(k)
  call stage2(k)
end
proc stage2(m)
  print m
  print m * m
end
)";
}

/// A flag parameter selecting behaviour — the classic cloning win.
std::string flagScenario() {
  return R"(program flags
proc main()
  call kernel(1)
  call kernel(0)
end
proc kernel(transpose)
  integer i
  if (transpose == 1) then
    print 100
  end if
  do i = 1, 8
    print transpose * i
  end do
end
)";
}

unsigned countConstants(const std::string &Source) {
  PipelineResult R = runPipeline(Source, PipelineOptions());
  if (!R.Ok) {
    std::cerr << "pipeline failed: " << R.Error;
    exit(1);
  }
  return R.SubstitutedConstants;
}

} // namespace

int main() {
  std::cout << "Cloning study: constants recovered by duplicating "
               "procedures per constant signature\n(Metzger & Stroud, "
               "paper reference [13])\n\n";

  std::vector<Scenario> Scenarios = {
      {"sharedkernel", sharedKernelScenario()},
      {"cascade", cascadeScenario()},
      {"flags", flagScenario()},
  };

  TablePrinter Table;
  Table.addHeader({"Scenario", "Before", "After", "Clones", "Rounds"});
  bool CloningHelps = true;
  for (const Scenario &S : Scenarios) {
    unsigned Before = countConstants(S.Source);
    CloneResult Cloned = cloneForConstants(S.Source);
    if (!Cloned.Ok) {
      std::cerr << Cloned.Error;
      return 1;
    }
    unsigned After = countConstants(Cloned.Source);
    Table.addRow({S.Name, std::to_string(Before), std::to_string(After),
                  std::to_string(Cloned.ClonesCreated),
                  std::to_string(Cloned.Rounds)});
    if (After <= Before || Cloned.ClonesCreated == 0)
      CloningHelps = false;
  }
  Table.print(std::cout);

  // Negative control: the generated suite has no cloning opportunities
  // (its conflicting constants flow to distinct procedures by design).
  unsigned SuiteClones = 0;
  for (const WorkloadProgram &P : benchmarkSuite()) {
    CloneResult Cloned = cloneForConstants(P.Source);
    if (!Cloned.Ok) {
      std::cerr << Cloned.Error;
      return 1;
    }
    SuiteClones += Cloned.ClonesCreated;
  }
  std::cout << "\nsuite negative control: " << SuiteClones
            << " clones across the 12 generated programs (expected 0)\n";
  std::cout << "finding: cloning 'substantially increases' the constants "
               "on conflict-heavy scenarios: "
            << (CloningHelps ? "yes" : "NO") << "\n";
  return CloningHelps && SuiteClones == 0 ? 0 : 1;
}
