#!/usr/bin/env bash
#===- tools/verify.sh - Full verification sweep --------------------------===//
#
# Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
#
# Builds the 'default' and 'asan' CMake presets and runs, under each:
#   * the tier-1 test suite (everything except the oracle/bench/fuzz/
#     serve/vm labels),
#   * the seeded translation-validation fuzz (`ctest -L check-oracle`),
#   * the coverage-guided fuzzer suite (`ctest -L check-fuzz`: a bounded
#     campaign plus the tests/corpus/ regression replay),
#   * the analysis-server suite (`ctest -L check-serve`: protocol goldens,
#     cache/coalescing, deadlines, shedding, drain, the driver
#     differential),
#   * the engine-differential wall (`ctest -L check-vm`: bytecode VM vs
#     AST interpreter across the suite, random seeds x configs, corpus,
#     server replay, and oracle check counts),
#   * the precision-differential wall (`ctest -L check-precision`:
#     CONSTANTS inclusion of the classic analysis in the flow-sensitive
#     aliasing and optimistic-numbering upgrades over the suite and a
#     random sweep, oracle-validated recoveries, toggle-off identity),
#   * the copy-lattice wall (`ctest -L check-copy`: CONSTANTS inclusion
#     of the classic analysis in the copy tier over the extended suite
#     and a 200-seed relay sweep, oracle-validated recoveries, strict
#     per-family gains, toggle-off identity),
#   * the distributed tier (`ctest -L check-dist`: sharded-vs-single
#     byte-identity at the full grid and 30 random seeds, worker-crash
#     reassignment, shard-file hardening, and the router wall —
#     forwarding identity, backend-death rehash, all-down overload,
#     shutdown races), and
#   * the bench smokes (`ctest -L check-bench`: cold-vs-warm suite,
#     server throughput, the distributed tier, and the
#     VM-vs-interpreter >=10x gate — the gate is relaxed under
#     sanitizer presets, which tax the two engines unevenly).
#
# Under the default preset only, also runs the full (non-smoke) memo and
# cold-path bench gates: the suite bench's >=0.3 solver-memo hit-rate and
# >=2x warm-speedup gates, the serve bench's >=2x hot-vs-cold and
# byte-identity gates, and the distributed bench's identity +
# hardware-conditional speedup gates. Sanitizer presets skip these —
# wall-clock gates are meaningless under instrumentation.
#
# When gcov is available, finishes with a small instrumented (cov
# preset) check-fuzz run and prints the line-coverage summary the
# campaign achieves over src/ (tools/coverage-report.sh).
#
# Usage: tools/verify.sh [--quick] [--tsan]
#   --quick   default preset only (skip the sanitizer rebuild and the
#             coverage pass)
#   --tsan    also build the 'tsan' preset and run the tier-1,
#             check-copy, check-serve, and check-vm suites plus the VM
#             bench smoke
#             under ThreadSanitizer, with explicit passes over the
#             session-shared solver-memo tests (the value-context memo
#             is shared state reachable from pool workers) and the
#             router tests (concurrent forwards, backend death, and the
#             shutdown/traffic/kill race exercise the lock-free
#             teardown) (opt-in: the TSan rebuild roughly doubles the
#             sweep)
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(default asan)
RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --quick) PRESETS=(default) ;;
    --tsan)  RUN_TSAN=1 ;;
    *)       echo "usage: tools/verify.sh [--quick] [--tsan]" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${PRESETS[@]}"; do
  case "$preset" in
    default) builddir=build ;;
    asan)    builddir=build-asan ;;
    *)       echo "unknown preset $preset" >&2; exit 1 ;;
  esac

  echo "==== [$preset] configure + build ===="
  cmake --preset "$preset" >/dev/null
  cmake --build "$builddir" -j "$JOBS"

  echo "==== [$preset] tier-1 tests ===="
  ctest --test-dir "$builddir" \
        -LE "check-oracle|check-bench|check-fuzz|check-serve|check-vm|check-dist|check-precision|check-copy" \
        --output-on-failure -j "$JOBS"

  echo "==== [$preset] oracle fuzz (check-oracle) ===="
  ctest --test-dir "$builddir" -L check-oracle --output-on-failure -j "$JOBS"

  echo "==== [$preset] coverage fuzz (check-fuzz) ===="
  ctest --test-dir "$builddir" -L check-fuzz --output-on-failure -j "$JOBS"

  echo "==== [$preset] analysis server (check-serve) ===="
  ctest --test-dir "$builddir" -L check-serve --output-on-failure -j "$JOBS"

  echo "==== [$preset] engine differential (check-vm) ===="
  ctest --test-dir "$builddir" -L check-vm --output-on-failure -j "$JOBS"

  echo "==== [$preset] distributed tier (check-dist) ===="
  ctest --test-dir "$builddir" -L check-dist --output-on-failure -j "$JOBS"

  echo "==== [$preset] precision wall (check-precision) ===="
  ctest --test-dir "$builddir" -L check-precision --output-on-failure -j "$JOBS"

  echo "==== [$preset] copy-lattice wall (check-copy) ===="
  ctest --test-dir "$builddir" -L check-copy --output-on-failure -j "$JOBS"

  echo "==== [$preset] bench smokes (check-bench) ===="
  ctest --test-dir "$builddir" -L check-bench --output-on-failure

  if [[ "$preset" == "default" ]]; then
    echo "==== [default] full memo/cold-path bench gates ===="
    ./build/bench/incremental_speedup --json=build/BENCH_suite.json
    ./build/bench/serve_throughput --json=build/BENCH_serve.json
    ./build/bench/dist_speedup --json=build/BENCH_dist.json
  fi
done

if [[ "$RUN_TSAN" == "1" ]]; then
  echo "==== [tsan] configure + build ===="
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "==== [tsan] tier-1 tests ===="
  ctest --test-dir build-tsan \
        -LE "check-oracle|check-bench|check-fuzz|check-serve|check-vm|check-dist|check-precision|check-copy" \
        --output-on-failure -j "$JOBS"

  echo "==== [tsan] copy-lattice wall (check-copy) ===="
  ctest --test-dir build-tsan -L check-copy --output-on-failure -j "$JOBS"

  echo "==== [tsan] session-shared solver memo ===="
  ctest --test-dir build-tsan -R 'AnalysisSession\.' --no-tests=error \
        --output-on-failure -j "$JOBS"

  echo "==== [tsan] analysis server (check-serve) ===="
  ctest --test-dir build-tsan -L check-serve --output-on-failure -j "$JOBS"

  echo "==== [tsan] engine differential (check-vm) ===="
  ctest --test-dir build-tsan -L check-vm --output-on-failure -j "$JOBS"

  echo "==== [tsan] router: death, rehash, shutdown races ===="
  ctest --test-dir build-tsan -R '^Router(Fleet)?\.' --no-tests=error \
        --output-on-failure -j "$JOBS"

  echo "==== [tsan] vm throughput smoke (relaxed gate) ===="
  ctest --test-dir build-tsan -R vm_throughput_smoke --output-on-failure
fi

if [[ "${PRESETS[*]}" != "default" ]] && command -v gcov >/dev/null; then
  echo "==== [cov] instrumented check-fuzz + line-coverage summary ===="
  cmake --preset cov >/dev/null
  cmake --build build-cov -j "$JOBS"
  ctest --test-dir build-cov -L check-fuzz --output-on-failure -j "$JOBS"
  tools/coverage-report.sh build-cov | tail -n 5
fi

echo "==== verify: all presets green ===="
