#!/usr/bin/env bash
#===- tools/verify.sh - Full verification sweep --------------------------===//
#
# Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
#
# Builds the 'default' and 'asan' CMake presets and runs, under each:
#   * the tier-1 test suite (everything except the oracle/bench/fuzz labels),
#   * the seeded translation-validation fuzz (`ctest -L check-oracle`),
#   * the coverage-guided fuzzer suite (`ctest -L check-fuzz`: a bounded
#     campaign plus the tests/corpus/ regression replay), and
#   * the cold-vs-warm suite bench in smoke mode (`ctest -L check-bench`).
#
# When gcov is available, finishes with a small instrumented (cov
# preset) check-fuzz run and prints the line-coverage summary the
# campaign achieves over src/ (tools/coverage-report.sh).
#
# Usage: tools/verify.sh [--quick]
#   --quick   default preset only (skip the sanitizer rebuild and the
#             coverage pass)
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(default asan)
if [[ "${1:-}" == "--quick" ]]; then
  PRESETS=(default)
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${PRESETS[@]}"; do
  case "$preset" in
    default) builddir=build ;;
    asan)    builddir=build-asan ;;
    *)       echo "unknown preset $preset" >&2; exit 1 ;;
  esac

  echo "==== [$preset] configure + build ===="
  cmake --preset "$preset" >/dev/null
  cmake --build "$builddir" -j "$JOBS"

  echo "==== [$preset] tier-1 tests ===="
  ctest --test-dir "$builddir" -LE "check-oracle|check-bench|check-fuzz" \
        --output-on-failure -j "$JOBS"

  echo "==== [$preset] oracle fuzz (check-oracle) ===="
  ctest --test-dir "$builddir" -L check-oracle --output-on-failure -j "$JOBS"

  echo "==== [$preset] coverage fuzz (check-fuzz) ===="
  ctest --test-dir "$builddir" -L check-fuzz --output-on-failure -j "$JOBS"

  echo "==== [$preset] incremental-suite smoke (check-bench) ===="
  ctest --test-dir "$builddir" -L check-bench --output-on-failure
done

if [[ "${1:-}" != "--quick" ]] && command -v gcov >/dev/null; then
  echo "==== [cov] instrumented check-fuzz + line-coverage summary ===="
  cmake --preset cov >/dev/null
  cmake --build build-cov -j "$JOBS"
  ctest --test-dir build-cov -L check-fuzz --output-on-failure -j "$JOBS"
  tools/coverage-report.sh build-cov | tail -n 5
fi

echo "==== verify: all presets green ===="
