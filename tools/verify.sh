#!/usr/bin/env bash
#===- tools/verify.sh - Full verification sweep --------------------------===//
#
# Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
#
# Builds the 'default' and 'asan' CMake presets and runs, under each:
#   * the tier-1 test suite (everything except the oracle/bench labels),
#   * the seeded translation-validation fuzz (`ctest -L check-oracle`), and
#   * the cold-vs-warm suite bench in smoke mode (`ctest -L check-bench`).
#
# Usage: tools/verify.sh [--quick]
#   --quick   default preset only (skip the sanitizer rebuild)
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(default asan)
if [[ "${1:-}" == "--quick" ]]; then
  PRESETS=(default)
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${PRESETS[@]}"; do
  case "$preset" in
    default) builddir=build ;;
    asan)    builddir=build-asan ;;
    *)       echo "unknown preset $preset" >&2; exit 1 ;;
  esac

  echo "==== [$preset] configure + build ===="
  cmake --preset "$preset" >/dev/null
  cmake --build "$builddir" -j "$JOBS"

  echo "==== [$preset] tier-1 tests ===="
  ctest --test-dir "$builddir" -LE "check-oracle|check-bench" \
        --output-on-failure -j "$JOBS"

  echo "==== [$preset] oracle fuzz (check-oracle) ===="
  ctest --test-dir "$builddir" -L check-oracle --output-on-failure -j "$JOBS"

  echo "==== [$preset] incremental-suite smoke (check-bench) ===="
  ctest --test-dir "$builddir" -L check-bench --output-on-failure
done

echo "==== verify: all presets green ===="
