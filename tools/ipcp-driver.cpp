//===- tools/ipcp-driver.cpp - Command-line front end ---------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ipcp-driver: run the analyzer over a MiniFort file.
///
///   ipcp-driver [options] file.mf
///     --jf=<literal|intra|pass|poly>  forward jump function (default poly)
///     --no-rjf                        disable return jump functions
///     --no-mod                        drop interprocedural MOD information
///     --complete                      iterate with dead-code elimination
///     --intra-only                    purely intraprocedural propagation
///     --round-robin                   naive solver (default: worklist)
///     --emit-source                   print the transformed source
///     --quiet                         print only the substitution count
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/CopyProp.h"
#include "exec/ExecEngine.h"
#include "exec/Interpreter.h"
#include "exec/Oracle.h"
#include "ipcp/Cloning.h"
#include "ipcp/Inliner.h"
#include "ipcp/Pipeline.h"
#include "ir/CfgBuilder.h"
#include "ir/Dominators.h"
#include "ir/IrPrinter.h"
#include "lang/Parser.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "ipcp/AnalysisSession.h"
#include "ipcp/SummaryIO.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "workloads/ShardedSuite.h"
#include "workloads/Suite.h"
#include "workloads/SuiteRunner.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

using namespace ipcp;

static void printUsage() {
  std::cerr
      << "usage: ipcp-driver [options] <file.mf | --suite=<name>>\n"
         "  --jf=<literal|intra|pass|poly>  forward jump function kind\n"
         "  --no-rjf       disable return jump functions\n"
         "  --no-mod       drop interprocedural MOD information\n"
         "  --complete     iterate with dead-code elimination\n"
         "  --gsa          gated-SSA jump functions (no DCE iteration)\n"
         "  --fsa          flow-sensitive by-reference aliasing\n"
         "  --ogvn         optimistic (iterative) value numbering\n"
         "  --copy         interprocedural copy propagation (copy lattice)\n"
         "  --intra-only   purely intraprocedural propagation\n"
         "  --round-robin  naive fixpoint strategy\n"
         "  --binding-graph  binding multi-graph fixpoint strategy\n"
         "  --emit-source  print the transformed source\n"
         "  --quiet        print only the substitution count\n"
         "  --suite=<name> analyze a built-in suite program (e.g. ocean)\n"
         "  --threads=<n>  worker threads inside one analysis (0 = all cores)\n"
         "  --time         print per-phase wall-clock timings\n"
         "  --configs=<all|table2|table3>  batch: run the whole built-in\n"
         "                 suite under every named configuration\n"
         "  --jobs=<n>     batch workers for --configs (0 = all cores)\n"
         "  --sharing=<shared|percell>  batch: share one frontend and\n"
         "                 analysis session per program (default shared)\n"
         "  --dump-ir      print the lowered CFG of every procedure\n"
         "  --dump-ssa     print the SSA form of every procedure\n"
         "  --dump-jf      print every call site's jump functions\n"
         "  --constants-out=<file>  write the CONSTANTS sets to a file\n"
         "  --stats        print jump function and solver statistics\n"
         "  --inline       print the procedure-integrated program and exit\n"
         "  --clone        print the constant-cloned program and exit\n"
         "  --run          execute the program and print its PRINT trace\n"
         "  --validate     run the translation-validation oracle over the\n"
         "                 program under the selected analyzer options\n"
         "  --exec=<vm|ast>  execution engine for --run/--validate: the\n"
         "                 bytecode VM (default) or the AST interpreter\n"
         "  --read-seed=<n>  READ input stream seed for --run/--validate\n"
         "  --max-steps=<n>  execution step budget for --run/--validate\n"
         "  --server-url=<host:port>  forward the analysis to a running\n"
         "                 ipcp-serve and print its reply (byte-identical\n"
         "                 to local mode)\n"
         "  --shards=<n>   distribute across n forked worker processes:\n"
         "                 with --configs the suite's programs are\n"
         "                 partitioned, otherwise the one program's\n"
         "                 procedures are (report byte-identical to local)\n"
         "  --summary-out=<file>  write the program's jump-function\n"
         "                 summary (versioned JSON) and exit\n"
         "  --summary-in=<file>   load jump functions from a summary file\n"
         "                 instead of building them (validated against the\n"
         "                 source and the selected configuration)\n"
         "  --shard-worker --shard-in=<job> --shard-out=<result>\n"
         "                 internal: run one shard job file and exit\n";
}

// Parses a worker-count flag value: digits only, capped well below any
// plausible core count (0 means "all cores").
static bool parseCount(const std::string &Value, const char *Flag,
                       unsigned &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: " << Flag << " expects a non-negative integer, got '"
              << Value << "'\n";
    return false;
  }
  unsigned long N = std::strtoul(Value.c_str(), nullptr, 10);
  if (N > 1024) {
    std::cerr << "error: " << Flag << "=" << Value << " is out of range\n";
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

// Parses an unbounded non-negative integer flag value (seeds, budgets).
static bool parseU64(const std::string &Value, const char *Flag,
                     uint64_t &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: " << Flag << " expects a non-negative integer, got '"
              << Value << "'\n";
    return false;
  }
  Out = std::strtoull(Value.c_str(), nullptr, 10);
  return true;
}

int main(int argc, char **argv) {
  PipelineOptions Opts;
  std::string Path;
  std::string SuiteName;
  std::string ConstantsOut;
  bool EmitSource = false;
  bool Quiet = false;
  bool DumpIr = false;
  bool DumpSsa = false;
  bool DumpJf = false;
  bool DoInline = false;
  bool DoClone = false;
  bool DoRun = false;
  bool DoValidate = false;
  uint64_t ReadSeed = 1;
  uint64_t MaxSteps = RunLimits().MaxSteps;
  ExecEngine Engine = ExecEngine::Vm;
  bool Stats = false;
  bool Time = false;
  unsigned Jobs = 1;
  std::string ConfigSet;
  std::string ServerUrl;
  SuiteSharing Sharing = SuiteSharing::Shared;
  bool ShardWorker = false;
  std::string ShardIn;
  std::string ShardOut;
  unsigned Shards = 0;
  std::string SummaryOut;
  std::string SummaryIn;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--jf=", 0) == 0) {
      std::string Kind = Arg.substr(5);
      if (Kind == "literal")
        Opts.Kind = JumpFunctionKind::Literal;
      else if (Kind == "intra")
        Opts.Kind = JumpFunctionKind::IntraConst;
      else if (Kind == "pass")
        Opts.Kind = JumpFunctionKind::PassThrough;
      else if (Kind == "poly")
        Opts.Kind = JumpFunctionKind::Polynomial;
      else {
        std::cerr << "error: unknown jump function kind '" << Kind << "'\n";
        return 1;
      }
    } else if (Arg == "--no-rjf") {
      Opts.UseReturnJumpFunctions = false;
    } else if (Arg == "--no-mod") {
      Opts.UseMod = false;
    } else if (Arg == "--complete") {
      Opts.CompletePropagation = true;
    } else if (Arg == "--gsa") {
      Opts.UseGatedSsa = true;
    } else if (Arg == "--fsa") {
      Opts.FlowSensitiveAlias = true;
    } else if (Arg == "--ogvn") {
      Opts.OptimisticVn = true;
    } else if (Arg == "--copy") {
      Opts.CopyPropagation = true;
    } else if (Arg == "--intra-only") {
      Opts.IntraproceduralOnly = true;
    } else if (Arg == "--round-robin") {
      Opts.Strategy = SolverStrategy::RoundRobin;
    } else if (Arg == "--binding-graph") {
      Opts.Strategy = SolverStrategy::BindingGraph;
    } else if (Arg == "--emit-source") {
      EmitSource = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--time") {
      Time = true;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      if (!parseCount(Arg.substr(10), "--threads", Opts.Threads))
        return 1;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseCount(Arg.substr(7), "--jobs", Jobs))
        return 1;
    } else if (Arg.rfind("--configs=", 0) == 0) {
      ConfigSet = Arg.substr(10);
    } else if (Arg.rfind("--sharing=", 0) == 0) {
      std::string Mode = Arg.substr(10);
      if (Mode == "shared")
        Sharing = SuiteSharing::Shared;
      else if (Mode == "percell")
        Sharing = SuiteSharing::PerCell;
      else {
        std::cerr << "error: --sharing expects shared or percell, got '"
                  << Mode << "'\n";
        return 1;
      }
    } else if (Arg == "--dump-ir") {
      DumpIr = true;
    } else if (Arg == "--dump-ssa") {
      DumpSsa = true;
    } else if (Arg == "--dump-jf") {
      DumpJf = true;
    } else if (Arg.rfind("--constants-out=", 0) == 0) {
      ConstantsOut = Arg.substr(16);
    } else if (Arg == "--inline") {
      DoInline = true;
    } else if (Arg == "--clone") {
      DoClone = true;
    } else if (Arg == "--run") {
      DoRun = true;
    } else if (Arg == "--validate") {
      DoValidate = true;
    } else if (Arg.rfind("--exec=", 0) == 0) {
      std::string Name = Arg.substr(7);
      if (auto E = parseExecEngineName(Name)) {
        Engine = *E;
      } else {
        std::cerr << "error: --exec expects vm or ast, got '" << Name
                  << "'\n";
        return 1;
      }
    } else if (Arg.rfind("--read-seed=", 0) == 0) {
      if (!parseU64(Arg.substr(12), "--read-seed", ReadSeed))
        return 1;
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      if (!parseU64(Arg.substr(12), "--max-steps", MaxSteps))
        return 1;
    } else if (Arg.rfind("--suite=", 0) == 0) {
      SuiteName = Arg.substr(8);
    } else if (Arg.rfind("--server-url=", 0) == 0) {
      ServerUrl = Arg.substr(13);
    } else if (Arg == "--shard-worker") {
      ShardWorker = true;
    } else if (Arg.rfind("--shard-in=", 0) == 0) {
      ShardIn = Arg.substr(11);
    } else if (Arg.rfind("--shard-out=", 0) == 0) {
      ShardOut = Arg.substr(12);
    } else if (Arg.rfind("--shards=", 0) == 0) {
      if (!parseCount(Arg.substr(9), "--shards", Shards))
        return 1;
      if (Shards == 0) {
        std::cerr << "error: --shards expects at least 1 worker\n";
        return 1;
      }
    } else if (Arg.rfind("--summary-out=", 0) == 0) {
      SummaryOut = Arg.substr(14);
    } else if (Arg.rfind("--summary-in=", 0) == 0) {
      SummaryIn = Arg.substr(13);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      printUsage();
      return 1;
    } else {
      Path = Arg;
    }
  }

  // Internal worker mode: one shard job file in, one result file out.
  if (ShardWorker) {
    if (ShardIn.empty() || ShardOut.empty()) {
      std::cerr << "error: --shard-worker needs --shard-in and --shard-out\n";
      return 1;
    }
    return runShardWorker(ShardIn, ShardOut);
  }
  if (!ShardIn.empty() || !ShardOut.empty()) {
    std::cerr << "error: --shard-in/--shard-out only apply to "
                 "--shard-worker\n";
    return 1;
  }

  // Batch mode: the whole built-in suite under a named config set,
  // (program x config) runs fanned out across --jobs workers.
  if (!ConfigSet.empty()) {
    std::vector<SuiteConfig> Configs = configsByName(ConfigSet);
    if (Configs.empty()) {
      std::cerr << "error: unknown config set '" << ConfigSet
                << "' (expected all, table2, or table3)\n";
      return 1;
    }

    // Sharded batch: partition the suite's programs across forked
    // workers. The table and the "cells:" line are byte-identical to the
    // single-process batch below; the wall line reports worker stats.
    if (Shards > 0) {
      ShardedSuiteOptions SOpts;
      SOpts.NumWorkers = Shards;
      SOpts.ConfigSet = ConfigSet;
      ShardedSuiteResult Batch = runShardedSuite(extendedSuite(), SOpts);
      if (!Batch.Ok) {
        std::cerr << "error: " << Batch.Error << '\n';
        return 1;
      }
      TablePrinter Table;
      std::vector<std::string> Header = {"Program"};
      for (const SuiteConfig &C : Configs)
        Header.push_back(C.Name);
      Table.addHeader(Header);
      bool AllOk = true;
      unsigned Total = 0;
      for (size_t P = 0; P != Batch.NumPrograms; ++P) {
        std::vector<std::string> Row = {Batch.cell(P, 0).Program};
        for (size_t C = 0; C != Batch.NumConfigs; ++C) {
          const ShardCellResult &Cell = Batch.cell(P, C);
          AllOk = AllOk && Cell.Ok;
          Total += Cell.SubstitutedConstants;
          Row.push_back(Cell.Ok ? std::to_string(Cell.SubstitutedConstants)
                                : std::string("ERR"));
        }
        Table.addRow(Row);
      }
      Table.print(std::cout);
      std::cout << "\ncells: " << Batch.Cells.size() << " ("
                << Batch.NumPrograms << " programs x " << Batch.NumConfigs
                << " configs), total substituted: " << Total << "\n";
      std::cout << std::fixed << std::setprecision(1) << "wall: "
                << Batch.WallMs << " ms, shard workers: " << Shards
                << ", spawned: " << Batch.WorkersSpawned << ", crashes: "
                << Batch.WorkerCrashes << "\n"
                << std::defaultfloat;
      return AllOk ? 0 : 1;
    }
    SuiteRunResult Batch =
        runSuite(extendedSuite(), Configs, Jobs, Opts.Threads, Sharing);

    TablePrinter Table;
    std::vector<std::string> Header = {"Program"};
    for (const SuiteConfig &C : Configs)
      Header.push_back(C.Name);
    Table.addHeader(Header);
    bool AllOk = true;
    for (size_t P = 0; P != Batch.NumPrograms; ++P) {
      std::vector<std::string> Row = {Batch.cell(P, 0).Program};
      for (size_t C = 0; C != Batch.NumConfigs; ++C) {
        const SuiteCell &Cell = Batch.cell(P, C);
        AllOk = AllOk && Cell.Ok;
        Row.push_back(Cell.Ok
                          ? std::to_string(Cell.SubstitutedConstants)
                          : std::string("ERR"));
      }
      Table.addRow(Row);
    }
    Table.print(std::cout);
    std::cout << "\ncells: " << Batch.Cells.size() << " ("
              << Batch.NumPrograms << " programs x " << Batch.NumConfigs
              << " configs), total substituted: " << Batch.TotalSubstituted
              << "\n";
    // Cell-time sum over wall measures overlap achieved, not true
    // speedup (cell times at jobs>1 include descheduled time); compare
    // wall clocks across --jobs values for that — see
    // bench/parallel_speedup.
    std::cout << std::fixed << std::setprecision(1) << "wall: "
              << Batch.WallMs << " ms, cell-time sum: " << Batch.CellMs
              << " ms, jobs: " << (Jobs ? Jobs : ThreadPool::hardwareThreads())
              << ", overlap: "
              << (Batch.WallMs > 0 ? Batch.CellMs / Batch.WallMs : 0.0)
              << "x\n";
    if (Stats) {
      // Hit *rate*, not raw counters: two counters hid a 0-hit memo for
      // three PRs. Guarded denominator: a batch with no memo-eligible
      // visits reports 0, not NaN. (The single-run report deliberately
      // omits memo counters — they are warmth-dependent and that output
      // must stay byte-identical between local and served runs; see
      // serve/Render.cpp.)
      uint64_t Hits = 0, Misses = 0;
      for (const SuiteCell &Cell : Batch.Cells) {
        Hits += Cell.SolverMemoHits;
        Misses += Cell.SolverMemoMisses;
      }
      uint64_t Total = Hits + Misses;
      std::cout << "solver memo: hit rate "
                << (Total ? 100.0 * double(Hits) / double(Total) : 0.0)
                << "% (" << Hits << " hits / " << Misses << " misses)\n";
    }
    if (Time) {
      std::cout << std::fixed << std::setprecision(2)
                << "per-cell phase timings (ms):\n";
      for (const SuiteCell &Cell : Batch.Cells) {
        const PhaseTimings &T = Cell.Timings;
        std::cout << "  " << Cell.Program << "/" << Cell.Config
                  << ": lower " << T.LowerMs << ", jf "
                  << T.JumpFunctionsMs << ", solve " << T.SolveMs
                  << ", substitute " << T.SubstituteMs << ", total "
                  << T.TotalMs;
        // Hit *rate*, not raw counters: two counters hid a 0-hit memo
        // for three PRs. Guard the cells with no memo-eligible visits.
        if (uint64_t Total = Cell.SolverMemoHits + Cell.SolverMemoMisses)
          std::cout << " (memo hit rate "
                    << 100.0 * double(Cell.SolverMemoHits) / double(Total)
                    << "% of " << Total << ")";
        std::cout << "\n";
      }
      if (Sharing == SuiteSharing::Shared) {
        const SessionStats &S = Batch.Cache;
        std::cout << "shared frontend: " << Batch.FrontendMs
                  << " ms for " << Batch.NumPrograms << " programs\n"
                  << "session caches: lowered " << S.ProcsLowered
                  << " procs (" << S.ProcsRelowered
                  << " re-lowered), ssa " << S.SsaBuilt << " built/"
                  << S.SsaReused << " reused, vn " << S.VnBuilt
                  << " built/" << S.VnReused << " reused, jf bases "
                  << S.JfBasesBuilt << " built/" << S.JfBasesReused
                  << " reused\n";
        uint64_t MemoTotal = S.SolverMemoHits + S.SolverMemoMisses;
        std::cout << "solver memo: hit rate "
                  << (MemoTotal
                          ? 100.0 * double(S.SolverMemoHits) /
                                double(MemoTotal)
                          : 0.0)
                  << "% (" << S.SolverMemoHits << " hits / "
                  << S.SolverMemoMisses << " misses)\n";
      }
      std::cout << std::defaultfloat;
    }
    return AllOk ? 0 : 1;
  }

  std::string Source;
  if (!SuiteName.empty()) {
    for (const WorkloadProgram &P : extendedSuite())
      if (P.Name == SuiteName)
        Source = P.Source;
    if (Source.empty()) {
      std::cerr << "error: no suite program named '" << SuiteName << "'\n";
      return 1;
    }
  } else if (!Path.empty()) {
    // An ifstream opens a directory without error and then reads nothing,
    // which would silently analyze an empty program — check the path
    // first, and check the stream again after draining it.
    std::error_code Ec;
    if (!std::filesystem::exists(Path, Ec)) {
      std::cerr << "error: no such file '" << Path << "'\n";
      return 1;
    }
    if (!std::filesystem::is_regular_file(Path, Ec)) {
      std::cerr << "error: '" << Path << "' is not a regular file\n";
      return 1;
    }
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "error: cannot open '" << Path << "'\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (In.bad()) {
      std::cerr << "error: failed reading '" << Path << "'\n";
      return 1;
    }
    Source = Buf.str();
  } else {
    printUsage();
    return 1;
  }

  // Served mode: forward the analysis to a running ipcp-serve and print
  // its reply. The server renders through the same serve/Render code
  // this binary uses locally, so stdout is byte-identical to local mode
  // (the differential test in ServeTests holds us to that).
  if (!ServerUrl.empty()) {
    if (DoRun || DoValidate || DoInline || DoClone || DumpIr || DumpSsa ||
        DumpJf || Time || !ConstantsOut.empty()) {
      std::cerr << "error: --server-url supports only the analysis report "
                   "(no --run/--validate/--inline/--clone/--dump-*/--time/"
                   "--constants-out)\n";
      return 1;
    }
    ServeRequest Req;
    Req.Id = "cli";
    Req.Method = ServeMethod::AnalyzeSource;
    Req.Config = Opts;
    Req.Report.Quiet = Quiet;
    Req.Report.Stats = Stats;
    Req.Report.EmitSource = EmitSource;
    Req.Source = Source;

    ServeClient Client;
    std::string Error, ReplyLine;
    if (!Client.connect(ServerUrl, Error) ||
        !Client.call(serializeServeRequest(Req), ReplyLine, Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::optional<JsonValue> Reply = parseJson(ReplyLine, Error);
    if (!Reply || !Reply->isObject()) {
      std::cerr << "error: unparseable server reply: " << Error << '\n';
      return 1;
    }
    if (!Reply->boolOr("ok", false)) {
      const JsonValue *E = Reply->find("error");
      std::cerr << (E ? E->strOr("message", "server error")
                      : std::string("server error"));
      std::cerr << '\n';
      return 1;
    }
    const JsonValue *Result = Reply->find("result");
    std::cout << (Result ? Result->strOr("output", "") : std::string());
    return 0;
  }

  // The distributed-analysis flags all drive the plain analysis report.
  if (!SummaryOut.empty() || !SummaryIn.empty() || Shards > 0) {
    int Picked = (SummaryOut.empty() ? 0 : 1) + (SummaryIn.empty() ? 0 : 1) +
                 (Shards > 0 ? 1 : 0);
    if (Picked > 1) {
      std::cerr << "error: --summary-out, --summary-in, and --shards are "
                   "mutually exclusive\n";
      return 1;
    }
    if (DoRun || DoValidate || DoInline || DoClone || DumpIr || DumpSsa ||
        DumpJf) {
      std::cerr << "error: --summary-out/--summary-in/--shards support only "
                   "the analysis report\n";
      return 1;
    }
    if (Opts.CompletePropagation || Opts.IntraproceduralOnly) {
      std::cerr << "error: --complete and --intra-only build no reusable "
                   "jump functions to serialize or shard\n";
      return 1;
    }
  }
  std::string ProgramName =
      !SuiteName.empty()
          ? SuiteName
          : (!Path.empty() ? std::filesystem::path(Path).filename().string()
                           : std::string("program"));

  // Summary export: write the versioned jump-function summary and exit.
  if (!SummaryOut.empty()) {
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(Source, Diags);
    SymbolTable Symbols;
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      Diags.print(std::cerr);
      return 1;
    }
    AnalysisSession Session(*Ctx, Symbols);
    JumpFunctionOptions JfOpts;
    JfOpts.Kind = Opts.Kind;
    JfOpts.UseReturnJumpFunctions = Opts.UseReturnJumpFunctions;
    JfOpts.UseMod = Opts.UseMod;
    JfOpts.UseGatedSsa = Opts.UseGatedSsa;
    JfOpts.FlowSensitiveAlias = Opts.FlowSensitiveAlias;
    JfOpts.OptimisticVn = Opts.OptimisticVn;
    JfOpts.CopyPropagation = Opts.CopyPropagation;
    ProgramSummary S = buildSummary(Session, JfOpts, ProgramName,
                                    summarySourceHash(Source));
    std::ofstream OutFile(SummaryOut, std::ios::binary | std::ios::trunc);
    if (!OutFile) {
      std::cerr << "error: cannot write '" << SummaryOut << "'\n";
      return 1;
    }
    OutFile << serializeSummary(S) << '\n';
    OutFile.flush();
    if (!OutFile) {
      std::cerr << "error: failed writing '" << SummaryOut << "'\n";
      return 1;
    }
    std::cerr << "! wrote summary of " << S.Procs.size()
              << " procedures to '" << SummaryOut << "'\n";
    return 0;
  }

  if (DoRun) {
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(Source, Diags);
    SymbolTable Symbols;
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      Diags.print(std::cerr);
      return 1;
    }
    ProgramRunner Runner(Ctx->program(), Symbols, Engine);
    RunOptions RO;
    RO.ReadSeed = ReadSeed;
    RO.Limits.MaxSteps = MaxSteps;
    RunResult R = Runner.run(RO);
    for (int64_t V : R.Prints)
      std::cout << V << '\n';
    std::cerr << "! " << R.str() << '\n';
    return R.Status == RunStatus::Ok ? 0 : 1;
  }

  if (DoValidate) {
    OracleOptions OOpts;
    OOpts.Pipeline = Opts;
    OOpts.Limits.MaxSteps = MaxSteps;
    OOpts.Engine = Engine;
    OOpts.ReadSeeds = {ReadSeed, ReadSeed + 1, ReadSeed + 2};
    OOpts.CheckInliner = true;
    OOpts.CheckCloning = true;
    OracleResult R = validateTranslation(Source, OOpts);
    if (!R.Ok) {
      std::cerr << "validation FAILED:\n" << R.Error << '\n';
      return 1;
    }
    std::cout << "validation passed: " << R.RunsExecuted << " runs, "
              << R.TraceComparisons << " trace comparisons, "
              << R.SubstitutedUseChecks << " substituted-use checks, "
              << R.EntryConstantChecks << " entry-constant checks\n";
    return 0;
  }

  if (DoInline || DoClone) {
    if (DoInline) {
      DiagnosticEngine Diags;
      auto Ctx = parseProgram(Source, Diags);
      SymbolTable Symbols = Sema::run(*Ctx, Diags);
      if (Diags.hasErrors()) {
        Diags.print(std::cerr);
        return 1;
      }
      InlineResult R = inlineProgram(*Ctx, Symbols);
      std::cout << R.Source;
      std::cerr << "! inlined " << R.InlinedCalls << " calls ("
                << R.SkippedRecursive << " recursive, "
                << R.SkippedHasReturn << " early-return, "
                << R.SkippedBudget << " budget kept)\n";
      return 0;
    }
    CloneResult R = cloneForConstants(Source);
    if (!R.Ok) {
      std::cerr << R.Error;
      return 1;
    }
    std::cout << R.Source;
    std::cerr << "! created " << R.ClonesCreated << " clones in "
              << R.Rounds << " rounds\n";
    return 0;
  }

  if (DumpIr || DumpSsa || DumpJf) {
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(Source, Diags);
    SymbolTable Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      Diags.print(std::cerr);
      return 1;
    }
    Module M = buildModule(Ctx->program(), Symbols);
    CallGraph CG(M, *Ctx->program().entryProc());
    ModRefInfo MRI(M, Symbols, CG);
    for (const auto &F : M.Functions) {
      if (DumpIr)
        printFunction(*F, Symbols, std::cout);
      if (DumpSsa) {
        DominatorTree DT(*F);
        SsaForm Ssa(*F, Symbols, DT, makeKillOracle(Symbols, &MRI));
        printSsa(Ssa, Symbols, std::cout);
      }
    }
    if (DumpJf) {
      JumpFunctionOptions JfOpts;
      JfOpts.Kind = Opts.Kind;
      JfOpts.UseReturnJumpFunctions = Opts.UseReturnJumpFunctions;
      JfOpts.UseMod = Opts.UseMod;
      JfOpts.UseGatedSsa = Opts.UseGatedSsa;
      JfOpts.FlowSensitiveAlias = Opts.FlowSensitiveAlias;
      JfOpts.OptimisticVn = Opts.OptimisticVn;
      JfOpts.CopyPropagation = Opts.CopyPropagation;
      std::optional<CopyPropInfo> CopyFacts;
      if (JfOpts.CopyPropagation) {
        RefAliasInfo Aliases(M, Symbols, &MRI);
        CopyFacts.emplace(M, Symbols, &MRI, Aliases);
      }
      ProgramJumpFunctions Jfs =
          buildJumpFunctions(M, Symbols, CG, &MRI, JfOpts,
                             /*Aliases=*/nullptr, /*Pool=*/nullptr,
                             /*Session=*/nullptr, /*FlowAliases=*/nullptr,
                             CopyFacts ? &*CopyFacts : nullptr);
      for (ProcId P = 0; P != CG.numProcs(); ++P) {
        const auto &Sites = CG.callSitesIn(P);
        for (size_t I = 0; I != Sites.size(); ++I) {
          const auto &Site = Jfs.PerSite[P][I];
          std::cout << Ctx->program().Procs[P]->name() << " -> "
                    << Ctx->program().Procs[Sites[I].Callee]->name()
                    << ":";
          const auto &Formals = Symbols.formals(Sites[I].Callee);
          for (size_t A = 0; A != Site.Args.size(); ++A)
            std::cout << ' ' << Symbols.symbol(Formals[A]).Name << "="
                      << Site.Args[A].str(Symbols);
          const auto &Globals = Symbols.globalScalars();
          for (size_t G = 0; G != Site.Globals.size(); ++G)
            if (!Site.Globals[G].isBottom())
              std::cout << ' ' << Symbols.symbol(Globals[G]).Name << "="
                        << Site.Globals[G].str(Symbols);
          std::cout << '\n';
        }
        for (const auto &[Sym, Rjf] : Jfs.ReturnJfs[P])
          if (!Rjf.isBottom())
            std::cout << "return " << Ctx->program().Procs[P]->name()
                      << "." << Symbols.symbol(Sym).Name << " = "
                      << Rjf.str(Symbols) << '\n';
      }
    }
    return 0;
  }

  Opts.EmitTransformedSource = EmitSource;
  PipelineResult Result;
  if (Shards > 0) {
    // Distributed analysis: jump-function construction sharded across
    // forked workers, solve + substitution local over the merged
    // summaries. The report below is byte-identical to local mode.
    ShardedAnalysisOptions SOpts;
    SOpts.NumShards = Shards;
    ShardedAnalysisResult SR =
        runShardedAnalysis(ProgramName, Source, Opts, SOpts);
    if (!SR.Ok) {
      std::cerr << (SR.Error.empty() ? std::string("sharded analysis failed")
                                     : SR.Error)
                << '\n';
      return 1;
    }
    Result = std::move(SR.Pipeline);
  } else if (!SummaryIn.empty()) {
    // Load stage 2 from a summary file instead of building it. Every
    // mismatch — version, configuration, source hash, shape — is a loud
    // failure, never a silent merge (see ipcp/SummaryIO.h).
    std::ifstream In(SummaryIn, std::ios::binary);
    if (!In) {
      std::cerr << "error: cannot open '" << SummaryIn << "'\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (In.bad()) {
      std::cerr << "error: failed reading '" << SummaryIn << "'\n";
      return 1;
    }
    ProgramSummary S;
    std::string Error;
    if (!parseSummary(Buf.str(), S, Error)) {
      std::cerr << "error: " << SummaryIn << ": " << Error << '\n';
      return 1;
    }
    DiagnosticEngine Diags;
    auto Ctx = parseProgram(Source, Diags);
    SymbolTable Symbols;
    if (!Diags.hasErrors())
      Symbols = Sema::run(*Ctx, Diags);
    if (Diags.hasErrors()) {
      Diags.print(std::cerr);
      return 1;
    }
    JumpFunctionOptions JfOpts;
    JfOpts.Kind = Opts.Kind;
    JfOpts.UseReturnJumpFunctions = Opts.UseReturnJumpFunctions;
    JfOpts.UseMod = Opts.UseMod;
    JfOpts.UseGatedSsa = Opts.UseGatedSsa;
    JfOpts.FlowSensitiveAlias = Opts.FlowSensitiveAlias;
    JfOpts.OptimisticVn = Opts.OptimisticVn;
    JfOpts.CopyPropagation = Opts.CopyPropagation;
    if (!sameJumpFunctionOptions(S.Options, JfOpts)) {
      std::cerr << "error: '" << SummaryIn << "' was built under a "
                   "different jump-function configuration than the one "
                   "selected\n";
      return 1;
    }
    if (S.SourceHash != summarySourceHash(Source)) {
      std::cerr << "error: '" << SummaryIn << "' summarizes a different "
                   "source than the one loaded\n";
      return 1;
    }
    AnalysisSession Session(*Ctx, Symbols);
    ProgramJumpFunctions Jfs;
    if (!reconstituteJumpFunctions(S, Session.module(), Symbols,
                                   Session.callGraph(), Jfs, Error)) {
      std::cerr << "error: " << SummaryIn << ": " << Error << '\n';
      return 1;
    }
    Result = runPipelineOnSession(Session, Opts, &Jfs);
  } else {
    Result = runPipeline(Source, Opts);
  }
  if (!Result.Ok) {
    std::cerr << Result.Error;
    return 1;
  }

  // "The CONSTANTS sets are written to a single file" (paper §4.1).
  if (!ConstantsOut.empty()) {
    std::ofstream Out(ConstantsOut);
    if (!Out) {
      std::cerr << "error: cannot write '" << ConstantsOut << "'\n";
      return 1;
    }
    Out << renderConstantsFile(Result);
    Out.flush();
    if (!Out) {
      std::cerr << "error: failed writing '" << ConstantsOut << "'\n";
      return 1;
    }
  }

  ReportOptions Report;
  Report.Quiet = Quiet;
  Report.Stats = Stats;
  Report.EmitSource = EmitSource;

  if (Quiet) {
    std::cout << renderAnalysisReport(Opts, Result, Report);
    return 0;
  }

  if (Time) {
    const PhaseTimings &T = Result.Timings;
    std::cout << std::fixed << std::setprecision(2) << "timings (ms):"
              << " frontend " << T.FrontendMs << ", lower " << T.LowerMs
              << ", jump functions " << T.JumpFunctionsMs << ", solve "
              << T.SolveMs << ", substitute " << T.SubstituteMs
              << ", total " << T.TotalMs << " (threads "
              << (Opts.Threads ? Opts.Threads
                               : ThreadPool::hardwareThreads())
              << ")\n"
              << std::defaultfloat;
  }

  std::cout << renderAnalysisReport(Opts, Result, Report);
  return 0;
}
