//===- tools/ipcp-fuzz.cpp - Coverage-guided fuzzer front end -------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ipcp-fuzz: run a coverage-guided fuzzing campaign against the
/// analyzer, or replay corpus entries.
///
///   ipcp-fuzz [options]
///     --seed=<n>          master seed (default 1)
///     --runs=<n>          mutant evaluations (default 200)
///     --time-budget=<s>   wall-clock cutoff in seconds (0 = none;
///                         campaigns under a cutoff are not replayable)
///     --corpus-dir=<dir>  load the starting corpus from / save retained
///                         entries and reduced reproducers into <dir>
///     --no-reduce         report failures unreduced
///     --seed-programs=<n> generated seed programs (default 6)
///     --max-steps=<n>     interpreter budget per oracle run
///     --exec=<vm|ast>     oracle execution engine (default vm)
///     --no-transforms     skip the inliner/cloning checks
///     --replay=<file.mf>  evaluate one corpus entry and exit
///     --quiet             only print failures and the final summary
///
/// Exits 0 when every evaluation passed, 1 when any check failed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/FuzzFeedback.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace ipcp;

static void printUsage() {
  std::cerr << "usage: ipcp-fuzz [options]\n"
               "  --seed=<n>          master seed (default 1)\n"
               "  --runs=<n>          mutant evaluations (default 200)\n"
               "  --time-budget=<s>   wall-clock cutoff in seconds\n"
               "  --corpus-dir=<dir>  on-disk corpus to load and extend\n"
               "  --no-reduce         report failures unreduced\n"
               "  --seed-programs=<n> generated seed programs (default 6)\n"
               "  --max-steps=<n>     interpreter budget per oracle run\n"
               "  --exec=<vm|ast>     oracle execution engine (default vm)\n"
               "  --no-transforms     skip inliner/cloning checks\n"
               "  --replay=<file.mf>  evaluate one corpus entry and exit\n"
               "  --quiet             only failures and the summary\n";
}

static bool parseU64(const std::string &Value, const char *Flag,
                     uint64_t &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: " << Flag
              << " expects a non-negative integer, got '" << Value << "'\n";
    return false;
  }
  Out = std::strtoull(Value.c_str(), nullptr, 10);
  return true;
}

static void printFailure(const FuzzFailure &F) {
  std::cout << "FAILURE kind=" << F.Kind << " config=" << F.Config
            << " iter=" << F.Iteration << "\n  " << F.Detail << "\n";
  if (!F.Trail.empty())
    std::cout << "  trail: " << F.Trail << "\n";
  std::cout << "--- reproducer ---\n" << F.Source << "------------------\n";
}

int main(int argc, char **argv) {
  FuzzOptions Opts;
  std::string ReplayPath;
  bool Quiet = false;
  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const std::string &Prefix) {
      return Arg.substr(Prefix.size());
    };
    uint64_t N = 0;
    if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseU64(Value("--seed="), "--seed", Opts.Seed))
        return 2;
    } else if (Arg.rfind("--runs=", 0) == 0) {
      if (!parseU64(Value("--runs="), "--runs", N))
        return 2;
      Opts.Runs = static_cast<unsigned>(N);
    } else if (Arg.rfind("--time-budget=", 0) == 0) {
      if (!parseU64(Value("--time-budget="), "--time-budget", N))
        return 2;
      Opts.TimeBudgetSec = double(N);
    } else if (Arg.rfind("--corpus-dir=", 0) == 0) {
      Opts.CorpusDir = Value("--corpus-dir=");
    } else if (Arg == "--no-reduce") {
      Opts.Reduce = false;
    } else if (Arg.rfind("--seed-programs=", 0) == 0) {
      if (!parseU64(Value("--seed-programs="), "--seed-programs", N))
        return 2;
      Opts.SeedPrograms = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      if (!parseU64(Value("--max-steps="), "--max-steps", Opts.MaxSteps))
        return 2;
    } else if (Arg.rfind("--exec=", 0) == 0) {
      if (auto E = parseExecEngineName(Value("--exec="))) {
        Opts.Engine = *E;
      } else {
        std::cerr << "error: --exec expects vm or ast, got '"
                  << Value("--exec=") << "'\n";
        return 2;
      }
    } else if (Arg == "--no-transforms") {
      Opts.CheckTransforms = false;
    } else if (Arg.rfind("--replay=", 0) == 0) {
      ReplayPath = Value("--replay=");
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      printUsage();
      return 2;
    }
  }

  if (!ReplayPath.empty()) {
    std::ifstream In(ReplayPath);
    if (!In) {
      std::cerr << "error: cannot open " << ReplayPath << "\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Diag;
    CorpusEntry Entry = parseCorpusEntry(Buf.str(), ReplayPath, &Diag);
    if (!Diag.empty()) {
      std::cerr << "error: " << ReplayPath << ": " << Diag << "\n";
      return 2;
    }
    FuzzFeedback FB;
    if (std::optional<FuzzFailure> Fail =
            evaluateProgram(Entry.Source, FB, Opts)) {
      printFailure(*Fail);
      return 1;
    }
    std::cout << "replay OK: " << ReplayPath << " (" << FB.countBits()
              << " feature bits)\n";
    return 0;
  }

  if (!Quiet)
    Opts.Log = &std::cout;
  FuzzResult Result = runFuzzer(Opts);
  for (const FuzzFailure &F : Result.Failures)
    printFailure(F);
  std::cout << "fuzz summary: iterations=" << Result.Iterations
            << " invalid=" << Result.MutantsInvalid
            << " retained=" << Result.MutantsRetained
            << " corpus=" << Result.CorpusSize
            << " feature-bits=" << Result.FeatureBits
            << " failures=" << Result.Failures.size() << "\n";
  return Result.Failures.empty() ? 0 : 1;
}
