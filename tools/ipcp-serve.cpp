//===- tools/ipcp-serve.cpp - The analysis server binary ------------------===//
//
// Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ipcp-serve: a long-lived analysis server speaking line-delimited JSON
/// (docs/SERVING.md) over stdio and, optionally, a loopback TCP socket.
///
///   ipcp-serve [options]
///     --tcp=<port>        also listen on 127.0.0.1:<port> (0 = ephemeral)
///     --port-file=<path>  write the bound TCP port to <path> (for
///                         scripts using --tcp=0)
///     --no-stdio          serve TCP only (run until a shutdown request)
///     --workers=<n>       request workers (default 2, 0 = all cores)
///     --queue-limit=<n>   admission bound on pending requests (default 64)
///     --cache-capacity=<n> resident programs in the session LRU (default 16)
///     --deadline-ms=<d>   default per-request deadline (0 = none)
///
/// Router (front-tier) mode — the same binary, no analysis of its own,
/// forwarding each request to a fleet of backend ipcp-serve processes by
/// rendezvous hash of the request's content key:
///
///     --router              run as a front tier instead of a backend
///     --backend=<url>       an existing backend (host:port; repeatable)
///     --spawn-backends=<n>  fork <n> backends on ephemeral ports
///     --forward-threads=<n> concurrent in-flight forwards (default 4)
///
/// In router mode --workers/--cache-capacity configure the *spawned
/// backends* and --queue-limit bounds the router's in-flight forwards.
///
/// The process exits after stdin closes or a shutdown request drains
/// (whichever transport it arrives on). It never exits on malformed
/// input — bad requests get structured error replies.
///
//===----------------------------------------------------------------------===//

#include "serve/Router.h"
#include "serve/Server.h"
#include "serve/Transport.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

using namespace ipcp;

static void printUsage() {
  std::cerr << "usage: ipcp-serve [--tcp=<port>] [--port-file=<path>] "
               "[--no-stdio]\n"
               "                  [--workers=<n>] [--queue-limit=<n>]\n"
               "                  [--cache-capacity=<n>] [--deadline-ms=<d>]\n"
               "                  [--router [--backend=<host:port>]...\n"
               "                   [--spawn-backends=<n>] "
               "[--forward-threads=<n>]]\n";
}

static bool parseUnsigned(const std::string &Value, const char *Flag,
                          unsigned long &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: " << Flag << " expects a non-negative integer, got '"
              << Value << "'\n";
    return false;
  }
  Out = std::strtoul(Value.c_str(), nullptr, 10);
  return true;
}

int main(int argc, char **argv) {
  ServerOptions Opts;
  RouterOptions ROpts;
  bool RouterMode = false;
  long TcpPort = -1; // -1 = no TCP listener.
  std::string PortFile;
  bool Stdio = true;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    unsigned long N = 0;
    if (Arg.rfind("--tcp=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(6), "--tcp", N) || N > 65535) {
        std::cerr << "error: --tcp expects a port number\n";
        return 1;
      }
      TcpPort = static_cast<long>(N);
    } else if (Arg.rfind("--port-file=", 0) == 0) {
      PortFile = Arg.substr(12);
    } else if (Arg == "--no-stdio") {
      Stdio = false;
    } else if (Arg == "--router") {
      RouterMode = true;
    } else if (Arg.rfind("--backend=", 0) == 0) {
      if (Arg.size() == 10) {
        std::cerr << "error: --backend expects a host:port\n";
        return 1;
      }
      ROpts.Backends.push_back(Arg.substr(10));
    } else if (Arg.rfind("--spawn-backends=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--spawn-backends", N) || N > 64)
        return 1;
      ROpts.SpawnBackends = static_cast<unsigned>(N);
    } else if (Arg.rfind("--forward-threads=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(18), "--forward-threads", N) || N == 0 ||
          N > 256)
        return 1;
      ROpts.ForwardThreads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(10), "--workers", N) || N > 1024)
        return 1;
      Opts.Workers = static_cast<unsigned>(N);
      ROpts.BackendWorkers = static_cast<unsigned>(N);
    } else if (Arg.rfind("--queue-limit=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), "--queue-limit", N) || N == 0)
        return 1;
      Opts.QueueLimit = N;
      ROpts.QueueLimit = N;
    } else if (Arg.rfind("--cache-capacity=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--cache-capacity", N) || N == 0)
        return 1;
      Opts.CacheCapacity = N;
      ROpts.BackendCacheCapacity = N;
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), "--deadline-ms", N))
        return 1;
      Opts.DefaultDeadlineMs = static_cast<double>(N);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      printUsage();
      return 1;
    }
  }

  if (!Stdio && TcpPort < 0) {
    std::cerr << "error: --no-stdio requires --tcp=<port>\n";
    return 1;
  }
  if (!RouterMode &&
      (!ROpts.Backends.empty() || ROpts.SpawnBackends > 0)) {
    std::cerr << "error: --backend/--spawn-backends require --router\n";
    return 1;
  }
  if (RouterMode && ROpts.Backends.empty() && ROpts.SpawnBackends == 0) {
    std::cerr << "error: --router needs --backend=<host:port> or "
                 "--spawn-backends=<n>\n";
    return 1;
  }

  std::unique_ptr<Server> Srv;
  std::unique_ptr<Router> Rtr;
  RequestHandler *Handler = nullptr;
  if (RouterMode) {
    Rtr = std::make_unique<Router>(ROpts);
    std::string Error;
    if (!Rtr->start(Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cerr << "! routing across " << Rtr->numBackends() << " backends\n";
    Handler = Rtr.get();
  } else {
    Srv = std::make_unique<Server>(Opts);
    Handler = Srv.get();
  }

  TcpListener Listener;
  std::thread TcpThread;
  if (TcpPort >= 0) {
    std::string Error;
    if (!Listener.listen(static_cast<uint16_t>(TcpPort), Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    std::cerr << "! listening on 127.0.0.1:" << Listener.port() << '\n';
    if (!PortFile.empty()) {
      std::ofstream Out(PortFile);
      Out << Listener.port() << '\n';
      if (!Out) {
        std::cerr << "error: cannot write '" << PortFile << "'\n";
        return 1;
      }
    }
    TcpThread = std::thread([&] { Listener.run(*Handler); });
  }

  if (Stdio) {
    serveStream(*Handler, std::cin, std::cout);
  } else {
    // TCP-only: run() returns once a shutdown request starts draining.
    TcpThread.join();
  }

  Listener.stop();
  if (TcpThread.joinable())
    TcpThread.join();
  Handler->shutdown();
  return 0;
}
