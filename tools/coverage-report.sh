#!/usr/bin/env bash
#===- tools/coverage-report.sh - gcov line-coverage summary --------------===//
#
# Part of the ipcp project (Grove & Torczon, PLDI 1993 reproduction).
#
# Aggregates the .gcda data an IPCP_COVERAGE=ON build leaves behind into
# a per-file and total line-coverage summary for src/, using plain gcov
# (gcovr/lcov are deliberately not required). Typical use:
#
#   cmake --preset cov && cmake --build build-cov -j "$(nproc)"
#   ctest --test-dir build-cov -L check-fuzz
#   tools/coverage-report.sh build-cov
#
# Usage: tools/coverage-report.sh [builddir]   (default: build-cov)
#
#===----------------------------------------------------------------------===//

set -euo pipefail
cd "$(dirname "$0")/.."

BUILDDIR="${1:-build-cov}"
if [[ ! -d "$BUILDDIR" ]]; then
  echo "error: build directory '$BUILDDIR' does not exist" >&2
  echo "  (configure with: cmake --preset cov)" >&2
  exit 1
fi
if ! command -v gcov >/dev/null; then
  echo "error: gcov not found on PATH" >&2
  exit 1
fi

# Absolute paths: gcov runs from a scratch dir below and must still
# find each .gcda (and the .gcno beside it).
BUILDDIR=$(readlink -f "$BUILDDIR")
GCDA=$(find "$BUILDDIR/src" -name '*.gcda' 2>/dev/null || true)
if [[ -z "$GCDA" ]]; then
  echo "no .gcda data under $BUILDDIR/src — run the instrumented tests first" >&2
  echo "  (e.g. ctest --test-dir $BUILDDIR -L check-fuzz)" >&2
  exit 1
fi

# gcov -i emits per-source .gcov.json.gz summaries (gcc 9+); run it out
# of a scratch dir so the droppings never land in the tree, then tally
# executable vs executed lines per src/ file — a line hit in any
# translation unit counts as covered.
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

echo "$GCDA" | (cd "$SCRATCH" && xargs gcov -i -p >/dev/null 2>&1 || true)

find "$SCRATCH" -name '*.gcov.json.gz' -print0 |
python3 -c '
import gzip, json, sys

total, covered = {}, {}
for path in sys.stdin.buffer.read().split(b"\0"):
    if not path:
        continue
    with gzip.open(path) as fh:
        data = json.load(fh)
    for unit in data.get("files", []):
        name = unit["file"]
        at = name.find("/src/")
        if at < 0 and not name.startswith("src/"):
            continue
        name = "src/" + name[at + 5:] if at >= 0 else name
        seen = total.setdefault(name, set())
        hit = covered.setdefault(name, set())
        for line in unit.get("lines", []):
            seen.add(line["line_number"])
            if line["count"] > 0:
                hit.add(line["line_number"])

t = c = 0
for name in sorted(total):
    n, h = len(total[name]), len(covered[name])
    if n == 0:
        continue
    t += n
    c += h
    print(f"{100 * h / n:7.2f}%  {h:5}/{n:<5}  {name}")
if t:
    print(f"line coverage: {100 * c / t:.2f}% ({c} of {t} lines in src/)")
else:
    print("no source lines found")
'
